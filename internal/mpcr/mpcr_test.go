package mpcr

import (
	"math"
	"math/big"
	"testing"

	"ghosts/internal/core"
	"ghosts/internal/ipset"
	"ghosts/internal/ipv4"
	"ghosts/internal/rng"
)

// buildSets samples overlapping observation sets for t parties over a
// hidden population.
func buildSets(t *testing.T, parties int, population int, prob float64) ([]*ipset.Set, []*ipset.Set) {
	t.Helper()
	r := rng.New(9)
	sets := make([]*ipset.Set, parties)
	for i := range sets {
		sets[i] = ipset.New()
	}
	base := ipv4.MustParseAddr("20.0.0.0")
	for i := 0; i < population; i++ {
		a := base + ipv4.Addr(i)
		for j := range sets {
			if r.Bernoulli(prob) {
				sets[j].Add(a)
			}
		}
	}
	return sets, sets
}

func mkParties(t *testing.T, names []string, sets []*ipset.Set) []*Party {
	t.Helper()
	out := make([]*Party, len(names))
	for i, n := range names {
		p, err := NewParty(n, uint64(100+i), sets[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestGroupIsSafePrime(t *testing.T) {
	g, err := newGroup(defaultPrimeHex)
	if err != nil {
		t.Fatal(err)
	}
	if g.p.BitLen() < 500 {
		t.Fatalf("modulus only %d bits", g.p.BitLen())
	}
	if _, err := newGroup("1234"); err == nil {
		t.Fatal("non-prime literal accepted")
	}
	if _, err := newGroup("xyz"); err == nil {
		t.Fatal("garbage literal accepted")
	}
}

func TestHashToGroupDeterministicDistinct(t *testing.T) {
	g, _ := newGroup(defaultPrimeHex)
	a := g.hashToGroup(ipv4.MustParseAddr("1.2.3.4"))
	b := g.hashToGroup(ipv4.MustParseAddr("1.2.3.4"))
	c := g.hashToGroup(ipv4.MustParseAddr("1.2.3.5"))
	if a.Cmp(b) != 0 {
		t.Fatal("hash must be deterministic")
	}
	if a.Cmp(c) == 0 {
		t.Fatal("distinct addresses must hash differently")
	}
	if a.Cmp(g.p) >= 0 || a.Sign() <= 0 {
		t.Fatal("hash outside group range")
	}
}

func TestCommutativity(t *testing.T) {
	sets, _ := buildSets(t, 2, 10, 1)
	ps := mkParties(t, []string{"A", "B"}, sets)
	g := ps[0].g
	x := g.hashToGroup(ipv4.MustParseAddr("9.9.9.9"))
	ab := new(big.Int).Exp(x, ps[0].key, g.p)
	ab.Exp(ab, ps[1].key, g.p)
	ba := new(big.Int).Exp(x, ps[1].key, g.p)
	ba.Exp(ba, ps[0].key, g.p)
	if ab.Cmp(ba) != 0 {
		t.Fatal("encryption must commute")
	}
}

func TestComputeTableMatchesPlaintext(t *testing.T) {
	names := []string{"PING", "WEB", "FLOW"}
	sets, _ := buildSets(t, 3, 3000, 0.4)
	ps := mkParties(t, names, sets)
	secure, err := ComputeTable(ps)
	if err != nil {
		t.Fatal(err)
	}
	plain := core.TableFromSets(sets, names)
	if secure.T != plain.T {
		t.Fatalf("T = %d, want %d", secure.T, plain.T)
	}
	for s := 1; s < len(plain.Counts); s++ {
		if secure.Counts[s] != plain.Counts[s] {
			t.Fatalf("cell %03b: secure %d != plaintext %d", s, secure.Counts[s], plain.Counts[s])
		}
	}
}

func TestCiphertextsHideAddresses(t *testing.T) {
	// The batch a party emits must not contain the hashed plaintexts (one
	// exponentiation already randomises them), and two hops from parties
	// with different keys must differ.
	sets, _ := buildSets(t, 2, 50, 1)
	ps := mkParties(t, []string{"A", "B"}, sets)
	g := ps[0].g
	batch := ps[0].EncryptOwn()
	plain := map[string]bool{}
	sets[0].Range(func(a ipv4.Addr) bool {
		plain[string(g.hashToGroup(a).Bytes())] = true
		return true
	})
	for _, e := range batch.Elems {
		if plain[string(e.Bytes())] {
			t.Fatal("ciphertext equals hashed plaintext")
		}
	}
	again := ps[1].Raise(batch)
	if again.Hops != 2 {
		t.Fatalf("hops = %d", again.Hops)
	}
}

func TestShufflingBreaksOrder(t *testing.T) {
	// With ≥32 elements, the probability that a shuffle is the identity is
	// negligible; verify the emitted order differs from ascending-set
	// order for at least one position.
	set := ipset.New()
	for i := 0; i < 64; i++ {
		set.Add(ipv4.Addr(0x0a000000 + uint32(i)))
	}
	p, err := NewParty("X", 7, set)
	if err != nil {
		t.Fatal(err)
	}
	batch := p.EncryptOwn()
	g := p.g
	inOrder := true
	i := 0
	set.Range(func(a ipv4.Addr) bool {
		want := new(big.Int).Exp(g.hashToGroup(a), p.key, g.p)
		if batch.Elems[i].Cmp(want) != 0 {
			inOrder = false
			return false
		}
		i++
		return true
	})
	if inOrder {
		t.Fatal("batch emitted in plaintext order")
	}
}

func TestEstimateEndToEnd(t *testing.T) {
	// Secure estimate equals the plaintext estimate exactly (same table).
	names := []string{"A", "B", "C"}
	sets, _ := buildSets(t, 3, 5000, 0.35)
	ps := mkParties(t, names, sets)
	secure, err := Estimate(ps, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.DefaultEstimator(math.Inf(1)).Estimate(core.TableFromSets(sets, names))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(secure.N-plain.N) > 1e-6 {
		t.Fatalf("secure estimate %v != plaintext %v", secure.N, plain.N)
	}
	// And it should be in the neighbourhood of the truth (5000).
	if secure.N < 4000 || secure.N > 7000 {
		t.Fatalf("estimate %v implausible for population 5000", secure.N)
	}
}

func TestErrors(t *testing.T) {
	sets, _ := buildSets(t, 2, 10, 1)
	ps := mkParties(t, []string{"A", "B"}, sets)
	if _, err := ComputeTable(ps[:1]); err == nil {
		t.Fatal("single party accepted")
	}
	if _, err := Tally([]*Batch{{Source: "GHOST"}}, []string{"A"}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func BenchmarkProtocolThreeParties(b *testing.B) {
	r := rng.New(3)
	sets := make([]*ipset.Set, 3)
	for i := range sets {
		sets[i] = ipset.New()
		for j := 0; j < 500; j++ {
			sets[i].Add(ipv4.Addr(0x14000000 + r.Uint32()%2000))
		}
	}
	ps := make([]*Party, 3)
	for i := range ps {
		p, err := NewParty(string(rune('A'+i)), uint64(i+1), sets[i])
		if err != nil {
			b.Fatal(err)
		}
		ps[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeTable(ps); err != nil {
			b.Fatal(err)
		}
	}
}
