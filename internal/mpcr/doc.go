// Package mpcr implements secure multi-party capture-recapture: building
// the capture-history contingency table across several measurement
// operators without any operator revealing which IPv4 addresses it
// observed. This is the paper's stated future work (§8, citing the
// authors' INFOCOM poster "Estimating the used IPv4 address space with
// secure multi-party capture-recapture").
//
// The main entry points are NewParty (one operator with its secret
// exponent and observation set), ComputeTable — which circulates the
// encrypted batches and tallies them into a core.Table — and Estimate,
// which runs the paper-default estimator on that table; Tally is the
// combiner step alone.
//
// # Protocol
//
// The construction is the classic commutative-encryption private-set
// protocol (Pohlig–Hellman exponentiation over a safe-prime group):
//
//  1. Every party i holds a secret exponent k_i and its observation set
//     S_i. Addresses are deterministically hashed into the prime-order
//     subgroup of quadratic residues mod p: H(a) = (h(a) mod p)².
//  2. Encryption is E_i(x) = x^{k_i} mod p, which commutes:
//     E_i(E_j(x)) = E_j(E_i(x)) = x^{k_i·k_j}.
//  3. Each party encrypts its own hashed set and shuffles it, then the
//     batches circulate: every other party applies its own exponent (and
//     shuffles) in turn. After all t parties have touched a batch, equal
//     addresses — regardless of who contributed them — map to equal group
//     elements x^{k_1···k_t}.
//  4. A combiner (any party, or a third party) matches the fully
//     encrypted batches and tallies the number of elements per source
//     subset: exactly the z_s counts the log-linear model needs. Only the
//     *counts* ever become public; the matching tokens are pseudorandom
//     group elements.
//
// # Threat model
//
// Semi-honest (honest-but-curious) parties, as in the standard DDH-based
// PSI-cardinality literature: parties follow the protocol but may inspect
// what they receive. Shuffling between hops breaks positional linkage; the
// final tokens reveal nothing but equality. Two inherent caveats, shared
// by every deterministic-encryption PSI design: (a) any coalition holding
// *all* keys can dictionary-attack the small IPv4 domain, and (b) a party
// can test membership of a chosen address by injecting it into its own
// set. Operators must therefore be distinct non-colluding entities — the
// setting of the paper, where the sources are run by different
// organisations that cannot share raw logs for privacy reasons.
package mpcr
