// Package dhcp simulates dynamic address pools at the lease level,
// implementing the §4.6 discussion directly: how the *allocation policy*
// of a pool determines what long passive measurements see.
//
//   - With a lowest-free policy, the set of addresses ever handed out
//     equals the pool's peak simultaneous utilisation: long observation
//     windows measure the high watermark.
//   - With a uniform (random) policy, every pool address is eventually
//     handed out even if only a handful of subscribers are online at any
//     instant: long windows observe the whole pool.
//
// The paper argues the over-count is not an error — addresses held by a
// pool cannot be used elsewhere, so they are de facto in use — but the
// distinction matters when interpreting CR estimates, and this simulator
// makes it measurable.
//
// The main entry point is NewPool, which builds a Pool over a CIDR block
// under the chosen Policy; churn is driven through Lease/Advance (or the
// Churn convenience sweep) and the outcome read back with EverUsed versus
// Peak — the comparison behind the `ghosts -exp pools` ablation.
package dhcp
