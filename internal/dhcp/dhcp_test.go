package dhcp

import (
	"testing"
	"time"

	"ghosts/internal/ipv4"
)

func t0() time.Time { return time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestPoolBasics(t *testing.T) {
	p := NewPool(ipv4.MustParsePrefix("10.0.0.0/24"), LowestFree, 1)
	if p.Capacity() != 254 {
		t.Fatalf("capacity = %d, want 254 (network+broadcast excluded)", p.Capacity())
	}
	p.Advance(t0())
	a, err := p.Lease(1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a != ipv4.MustParseAddr("10.0.0.1") {
		t.Fatalf("lowest-free first lease = %v, want 10.0.0.1", a)
	}
	b, _ := p.Lease(2, time.Hour)
	if b != ipv4.MustParseAddr("10.0.0.2") {
		t.Fatalf("second lease = %v, want 10.0.0.2", b)
	}
	if p.Active() != 2 || p.Peak() != 2 {
		t.Fatalf("active=%d peak=%d", p.Active(), p.Peak())
	}
}

func TestLeaseExpiry(t *testing.T) {
	p := NewPool(ipv4.MustParsePrefix("10.0.0.0/28"), LowestFree, 1)
	p.Advance(t0())
	a, _ := p.Lease(1, time.Hour)
	p.Advance(t0().Add(2 * time.Hour))
	if p.Active() != 0 {
		t.Fatal("lease should have expired")
	}
	// The expired address returns to the head of the free list.
	b, _ := p.Lease(2, time.Hour)
	if b != a {
		t.Fatalf("re-lease = %v, want %v", b, a)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(ipv4.MustParsePrefix("10.0.0.0/30"), Uniform, 1)
	p.Advance(t0())
	for i := 0; i < 2; i++ { // /30 has 2 hosts
		if _, err := p.Lease(i, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Lease(9, time.Hour); err != ErrPoolExhausted {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
}

// The §4.6 contrast: under lowest-free, a long observation accumulates
// only the peak simultaneous usage; under uniform it accumulates the
// whole pool even though simultaneous usage is identical.
func TestPolicyDeterminesLongTermObservation(t *testing.T) {
	const clients = 40 // ≈16% of a /24 pool online at a time
	run := func(policy Policy) *Pool {
		p := NewPool(ipv4.MustParsePrefix("10.0.0.0/24"), policy, 7)
		p.Churn(t0(), 2000, time.Hour, clients, 0.5, 3*time.Hour)
		return p
	}
	low := run(LowestFree)
	uni := run(Uniform)

	if low.Peak() > clients || uni.Peak() > clients {
		t.Fatalf("peaks %d/%d cannot exceed client count %d", low.Peak(), uni.Peak(), clients)
	}
	lowEver := low.EverUsed().Len()
	uniEver := uni.EverUsed().Len()
	// Lowest-free: ever-used ≈ peak.
	if lowEver > low.Peak()+5 {
		t.Errorf("lowest-free ever-used %d should approximate peak %d", lowEver, low.Peak())
	}
	// Uniform: ever-used ≈ whole pool.
	if uniEver < 240 {
		t.Errorf("uniform ever-used %d should approach pool size 254", uniEver)
	}
	if uniEver <= 2*lowEver {
		t.Errorf("uniform (%d) must dwarf lowest-free (%d) over a long window", uniEver, lowEver)
	}
}

func TestChurnMonotone(t *testing.T) {
	p := NewPool(ipv4.MustParsePrefix("10.0.0.0/25"), Uniform, 3)
	series := p.Churn(t0(), 200, time.Hour, 20, 0.4, 2*time.Hour)
	if len(series) != 200 {
		t.Fatalf("series length %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatal("ever-used series must be monotone")
		}
	}
	if series[len(series)-1] == 0 {
		t.Fatal("no leases ever issued")
	}
}

func TestSlash31PoolUsesAllAddresses(t *testing.T) {
	p := NewPool(ipv4.MustParsePrefix("10.0.0.0/31"), LowestFree, 1)
	if p.Capacity() != 2 {
		t.Fatalf("/31 capacity = %d, want 2 (RFC 3021 semantics)", p.Capacity())
	}
}

func TestPolicyString(t *testing.T) {
	if LowestFree.String() != "lowest-free" || Uniform.String() != "uniform" {
		t.Fatal("Policy stringer broken")
	}
}

func BenchmarkChurnUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPool(ipv4.MustParsePrefix("10.0.0.0/24"), Uniform, uint64(i))
		p.Churn(t0(), 500, time.Hour, 50, 0.5, 3*time.Hour)
	}
}
