package dhcp

import (
	"errors"
	"sort"
	"time"

	"ghosts/internal/ipset"
	"ghosts/internal/ipv4"
	"ghosts/internal/rng"
)

// Policy selects how a pool picks the address for a new lease.
type Policy int

// Allocation policies.
const (
	// LowestFree hands out the lowest currently-unleased address (the
	// classic ISC dhcpd behaviour).
	LowestFree Policy = iota
	// Uniform hands out a uniformly random free address (privacy-oriented
	// allocators; also the behaviour the paper's measurements suggest).
	Uniform
)

func (p Policy) String() string {
	if p == Uniform {
		return "uniform"
	}
	return "lowest-free"
}

// Pool is one dynamic pool over a CIDR block.
type Pool struct {
	Prefix ipv4.Prefix
	Policy Policy

	r      *rng.RNG
	leases map[ipv4.Addr]lease
	free   []ipv4.Addr // maintained sorted for LowestFree
	// everUsed accumulates every address ever leased.
	everUsed *ipset.Set
	peak     int
	now      time.Time
}

type lease struct {
	client int
	expiry time.Time
}

// NewPool builds a pool over prefix (network and broadcast addresses are
// excluded for /31 and larger host ranges, matching real deployments).
func NewPool(prefix ipv4.Prefix, policy Policy, seed uint64) *Pool {
	p := &Pool{
		Prefix:   prefix,
		Policy:   policy,
		r:        rng.New(seed),
		leases:   make(map[ipv4.Addr]lease),
		everUsed: ipset.New(),
	}
	first, last := prefix.First(), prefix.Last()
	if prefix.Bits < 31 {
		first++ // skip network address
		last--  // skip broadcast
	}
	for a := first; ; a++ {
		p.free = append(p.free, a)
		if a == last {
			break
		}
	}
	return p
}

// Capacity returns the number of leasable addresses.
func (p *Pool) Capacity() int { return len(p.free) + len(p.leases) }

// Advance moves the pool clock forward, expiring leases.
func (p *Pool) Advance(now time.Time) {
	p.now = now
	var expired []ipv4.Addr
	for a, l := range p.leases {
		if !l.expiry.After(now) {
			expired = append(expired, a)
		}
	}
	// Keep the free list sorted: collect, then merge.
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, a := range expired {
		delete(p.leases, a)
	}
	p.free = mergeSorted(p.free, expired)
}

func mergeSorted(a, b []ipv4.Addr) []ipv4.Addr {
	if len(b) == 0 {
		return a
	}
	out := make([]ipv4.Addr, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// ErrPoolExhausted is returned by Lease when no address is free.
var ErrPoolExhausted = errors.New("dhcp: pool exhausted")

// Lease assigns an address to client until expiry.
func (p *Pool) Lease(client int, duration time.Duration) (ipv4.Addr, error) {
	if len(p.free) == 0 {
		return 0, ErrPoolExhausted
	}
	var idx int
	switch p.Policy {
	case Uniform:
		idx = p.r.Intn(len(p.free))
	default:
		idx = 0 // sorted: lowest free
	}
	a := p.free[idx]
	p.free = append(p.free[:idx], p.free[idx+1:]...)
	p.leases[a] = lease{client: client, expiry: p.now.Add(duration)}
	p.everUsed.Add(a)
	if n := len(p.leases); n > p.peak {
		p.peak = n
	}
	return a, nil
}

// Active returns the number of currently leased addresses.
func (p *Pool) Active() int { return len(p.leases) }

// Peak returns the maximum simultaneous leases seen so far (the high
// watermark the paper's Table 4 ground truth uses).
func (p *Pool) Peak() int { return p.peak }

// EverUsed returns the set of addresses ever handed out — what a long
// passive observation window accumulates.
func (p *Pool) EverUsed() *ipset.Set { return p.everUsed.Clone() }

// Churn runs a synthetic subscriber workload against the pool: clients
// subscribers, each online with the given probability per step, re-leasing
// whenever their lease lapsed; steps ticks of the given length. It returns
// the cumulative ever-used count after each step.
func (p *Pool) Churn(start time.Time, steps int, step time.Duration, clients int, pOnline float64, leaseTime time.Duration) []int {
	out := make([]int, 0, steps)
	online := make(map[int]ipv4.Addr, clients)
	for i := 0; i < steps; i++ {
		now := start.Add(time.Duration(i) * step)
		p.Advance(now)
		// Drop clients whose lease expired from the online map.
		for c, a := range online {
			if _, held := p.leases[a]; !held {
				delete(online, c)
			}
		}
		for c := 0; c < clients; c++ {
			if _, on := online[c]; on {
				continue
			}
			if !p.r.Bernoulli(pOnline) {
				continue
			}
			a, err := p.Lease(c, leaseTime)
			if err != nil {
				break // pool full this tick
			}
			online[c] = a
		}
		out = append(out, p.everUsed.Len())
	}
	return out
}
