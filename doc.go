// Package ghosts is a reproduction of "Capturing Ghosts: Predicting the
// Used IPv4 Space by Inferring Unobserved Addresses" (Zander, Andrew,
// Armitage; IMC 2014).
//
// The library estimates the true population of used IPv4 addresses —
// including addresses active but never observed by any measurement — by
// applying log-linear capture-recapture models to the capture histories of
// multiple heterogeneous measurement sources.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-reproduction comparison. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the
// runnable entry points are cmd/ghosts and the programs under examples/.
package ghosts
