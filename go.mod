module ghosts

go 1.22
