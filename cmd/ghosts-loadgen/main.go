// Command ghosts-loadgen drives a ghostsd worker or fleet router with a
// reproducible estimate workload and reports throughput, latency
// percentiles and the cache-status mix as deterministic JSON.
//
// The request corpus is generated up front: each entry is a valid
// capture-history table (3–4 sources) seeded from an experiment-catalogue
// id, so the same -seed and -corpus always produce byte-identical request
// bodies — and therefore the same canonical keys, wherever the fleet
// routes them. Requests pick corpus entries through a seeded Zipf sampler
// (a few hot keys, a long cold tail), the realistic shape for exercising
// the result cache, single-flight coalescing and fleet peer fill.
//
// Two driving modes:
//
//	closed loop (default): -requests N total across -concurrency workers,
//	    each issuing its next request as soon as the previous returns.
//	open loop: -rate R requests/second for -duration D, launched on a
//	    fixed schedule regardless of completions (reveals queueing
//	    collapse that closed loops hide).
//
// Usage:
//
//	ghosts-loadgen -target http://localhost:8080                 # closed loop
//	ghosts-loadgen -target http://localhost:8000 -rate 50 -duration 30s
//	ghosts-loadgen -target http://localhost:8000 -out bench.fleet.json
//
// The summary (schema ghosts.loadgen/v1) goes to -out or stdout; rows are
// documented in OBSERVABILITY.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ghosts/internal/experiments"
	"ghosts/internal/rng"
	"ghosts/internal/serve"
	"ghosts/internal/telemetry"
)

// Summary is the loadgen's JSON report. Every field except the wall-clock
// measurements is a pure function of the flags, so diffing two runs shows
// performance deltas, not workload drift.
type Summary struct {
	Schema      string  `json:"schema"` // always "ghosts.loadgen/v1"
	Target      string  `json:"target"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Seed        uint64  `json:"seed"`
	Corpus      int     `json:"corpus"`
	ZipfS       float64 `json:"zipf_s"`
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	HostCPUs    int     `json:"host_cpus"`

	DurationSeconds float64 `json:"duration_seconds"`
	Sent            int64   `json:"sent"`
	OK              int64   `json:"ok"`
	Errors          int64   `json:"errors"`
	ThroughputRPS   float64 `json:"throughput_rps"`

	LatencyMicros Latency  `json:"latency_us"`
	ByStatus      ByStatus `json:"by_status"`
	Timeline      []Tick   `json:"timeline,omitempty"`
}

// Latency summarises the response-time histogram in microseconds. The
// percentiles are power-of-two bucket upper bounds (telemetry.Histogram),
// coarse but monotone and stable across runs.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	Max  int64   `json:"max"`
}

// ByStatus counts responses by their X-Ghosts-Cache disposition. Over a
// Zipf mix the hit+coalesced+peer share should dominate once caches warm;
// a fleet that computes the same key twice shows up here before it shows
// up in CPU graphs.
type ByStatus struct {
	Hit       int64 `json:"hit"`
	Miss      int64 `json:"miss"`
	Coalesced int64 `json:"coalesced"`
	Peer      int64 `json:"peer"`
	Other     int64 `json:"other"`
}

// Tick is one second of the run: completions and errors landing in it.
type Tick struct {
	Second int   `json:"second"`
	Done   int64 `json:"done"`
	Errors int64 `json:"errors"`
}

// corpusEntry is one pre-encoded request body and its canonical key.
type corpusEntry struct {
	body []byte
	key  string
}

// buildCorpus derives size distinct estimate requests deterministically
// from (seed, catalogue ids): entry i seeds its generator from the master
// stream, draws 3 or 4 sources, and fills the capture-history cells with
// Poisson counts whose means decay with the overlap order — the same
// qualitative shape as the paper's tables (big single-source cells, thin
// high-order overlaps). Bodies are encoded once so every run — and every
// worker the router picks — sees byte-identical requests.
func buildCorpus(size int, seed uint64, withInterval bool) ([]corpusEntry, error) {
	ids := experiments.Catalogue()
	master := rng.New(seed)
	out := make([]corpusEntry, size)
	for i := range out {
		r := master.Split()
		t := 3 + r.Intn(2)
		counts := make([]int64, 1<<uint(t))
		for s := 1; s < len(counts); s++ {
			order := 0
			for b := s; b != 0; b &= b - 1 {
				order++
			}
			mean := 400.0
			for k := 1; k < order; k++ {
				mean /= 8
			}
			counts[s] = r.Poisson(mean)
		}
		if sum(counts) == 0 {
			counts[1] = 1 // degenerate draw: keep the request valid
		}
		req := serve.EstimateRequest{
			// The source names carry the catalogue id the entry was derived
			// from; distinct names make distinct canonical keys, so corpus
			// entries never collide even when two tables draw equal counts.
			Sources: sourceNames(ids[i%len(ids)].ID, i, t),
			Counts:  counts,
		}
		if !withInterval {
			f := false
			req.Interval = &f
		}
		if err := req.Normalize(); err != nil {
			return nil, fmt.Errorf("corpus entry %d: %v", i, err)
		}
		body, err := json.Marshal(&req)
		if err != nil {
			return nil, err
		}
		out[i] = corpusEntry{body: body, key: req.Key()}
	}
	return out, nil
}

func sourceNames(id string, i, t int) []string {
	names := make([]string, t)
	for s := 0; s < t; s++ {
		names[s] = fmt.Sprintf("%s-%d-S%d", id, i, s+1)
	}
	return names
}

func sum(xs []int64) int64 {
	var n int64
	for _, x := range xs {
		n += x
	}
	return n
}

// run drives the workload and aggregates the measurements.
type run struct {
	target  string
	client  *http.Client
	corpus  []corpusEntry
	lat     telemetry.Histogram
	sent    atomic.Int64
	ok      atomic.Int64
	errs    atomic.Int64
	status  [5]atomic.Int64 // hit, computed, coalesced, peer, other
	mu      sync.Mutex
	perSec  map[int]*Tick
	started time.Time
}

func (ld *run) shoot(ctx context.Context, e corpusEntry) {
	ld.sent.Add(1)
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ld.target+"/v1/estimate", bytes.NewReader(e.body))
	if err != nil {
		ld.record(t0, "", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ld.client.Do(req)
	if err != nil {
		ld.record(t0, "", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ld.record(t0, "", fmt.Errorf("http %d", resp.StatusCode))
		return
	}
	ld.record(t0, resp.Header.Get("X-Ghosts-Cache"), nil)
}

func (ld *run) record(t0 time.Time, cache string, err error) {
	now := time.Now()
	ld.lat.Observe(now.Sub(t0).Microseconds())
	sec := int(now.Sub(ld.started) / time.Second)
	ld.mu.Lock()
	tick := ld.perSec[sec]
	if tick == nil {
		tick = &Tick{Second: sec}
		ld.perSec[sec] = tick
	}
	tick.Done++
	if err != nil {
		tick.Errors++
	}
	ld.mu.Unlock()
	if err != nil {
		ld.errs.Add(1)
		return
	}
	ld.ok.Add(1)
	switch cache {
	case string(serve.StatusHit):
		ld.status[0].Add(1)
	case string(serve.StatusComputed):
		ld.status[1].Add(1)
	case string(serve.StatusCoalesced):
		ld.status[2].Add(1)
	case string(serve.StatusPeer):
		ld.status[3].Add(1)
	default:
		ld.status[4].Add(1)
	}
}

// closedLoop issues total requests across conc workers, each picking its
// next corpus entry from a private (but seeded) Zipf stream.
func (ld *run) closedLoop(ctx context.Context, total, conc int, seed uint64) {
	master := rng.New(seed ^ 0x10adc3)
	var wg sync.WaitGroup
	per := total / conc
	extra := total % conc
	for w := 0; w < conc; w++ {
		n := per
		if w < extra {
			n++
		}
		z := rng.NewZipf(master.Split(), len(ld.corpus), ldZipfS)
		wg.Add(1)
		go func(n int, z *rng.Zipf) {
			defer wg.Done()
			for i := 0; i < n && ctx.Err() == nil; i++ {
				ld.shoot(ctx, ld.corpus[z.Next()])
			}
		}(n, z)
	}
	wg.Wait()
}

// openLoop launches rate requests/second for dur on a fixed schedule; a
// slow target accumulates in-flight requests instead of slowing the
// arrival process.
func (ld *run) openLoop(ctx context.Context, rate float64, dur time.Duration, seed uint64) {
	z := rng.NewZipf(rng.New(seed^0x10adc3), len(ld.corpus), ldZipfS)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.After(dur)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-deadline:
			wg.Wait()
			return
		case <-tick.C:
			e := ld.corpus[z.Next()]
			wg.Add(1)
			go func() {
				defer wg.Done()
				ld.shoot(ctx, e)
			}()
		}
	}
}

// ldZipfS is set from -zipf before the drivers start (the samplers are
// built inside the drivers so each gets a deterministic stream).
var ldZipfS float64

func main() {
	var (
		targetFlag   = flag.String("target", "http://localhost:8080", "ghostsd worker or router base URL")
		requestsFlag = flag.Int("requests", 200, "closed loop: total requests")
		concFlag     = flag.Int("concurrency", 8, "closed loop: concurrent workers")
		rateFlag     = flag.Float64("rate", 0, "open loop: requests/second (0 selects the closed loop)")
		durFlag      = flag.Duration("duration", 10*time.Second, "open loop: run length")
		corpusFlag   = flag.Int("corpus", 64, "distinct requests in the corpus")
		zipfFlag     = flag.Float64("zipf", 1.1, "Zipf exponent for corpus popularity")
		seedFlag     = flag.Uint64("seed", 1, "corpus and sampler seed")
		intervalFlag = flag.Bool("interval", false, "request profile-likelihood intervals (slower computes)")
		timeoutFlag  = flag.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
		timelineFlag = flag.Bool("timeline", false, "include the per-second completion timeline in the summary")
		outFlag      = flag.String("out", "", "write the JSON summary here (default stdout)")
	)
	flag.Parse()
	if *corpusFlag <= 0 || *requestsFlag <= 0 || *concFlag <= 0 || *zipfFlag <= 0 {
		fmt.Fprintln(os.Stderr, "ghosts-loadgen: -corpus, -requests, -concurrency and -zipf must be positive")
		os.Exit(2)
	}
	ldZipfS = *zipfFlag

	corpus, err := buildCorpus(*corpusFlag, *seedFlag, *intervalFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghosts-loadgen: %v\n", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ld := &run{
		target:  *targetFlag,
		client:  &http.Client{Timeout: *timeoutFlag},
		corpus:  corpus,
		perSec:  make(map[int]*Tick),
		started: time.Now(),
	}
	mode := "closed"
	if *rateFlag > 0 {
		mode = "open"
		fmt.Fprintf(os.Stderr, "ghosts-loadgen: open loop against %s: %.4g req/s for %v over %d keys\n",
			*targetFlag, *rateFlag, *durFlag, len(corpus))
		ld.openLoop(ctx, *rateFlag, *durFlag, *seedFlag)
	} else {
		fmt.Fprintf(os.Stderr, "ghosts-loadgen: closed loop against %s: %d requests, %d workers, %d keys\n",
			*targetFlag, *requestsFlag, *concFlag, len(corpus))
		ld.closedLoop(ctx, *requestsFlag, *concFlag, *seedFlag)
	}
	elapsed := time.Since(ld.started)

	s := Summary{
		Schema:      "ghosts.loadgen/v1",
		Target:      *targetFlag,
		Mode:        mode,
		Seed:        *seedFlag,
		Corpus:      len(corpus),
		ZipfS:       *zipfFlag,
		Concurrency: *concFlag,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		HostCPUs:    runtime.NumCPU(),

		DurationSeconds: elapsed.Seconds(),
		Sent:            ld.sent.Load(),
		OK:              ld.ok.Load(),
		Errors:          ld.errs.Load(),
		LatencyMicros: Latency{
			Mean: ld.lat.Mean(),
			P50:  ld.lat.Quantile(0.50),
			P90:  ld.lat.Quantile(0.90),
			P99:  ld.lat.Quantile(0.99),
			Max:  ld.lat.Max(),
		},
		ByStatus: ByStatus{
			Hit:       ld.status[0].Load(),
			Miss:      ld.status[1].Load(),
			Coalesced: ld.status[2].Load(),
			Peer:      ld.status[3].Load(),
			Other:     ld.status[4].Load(),
		},
	}
	if mode == "open" {
		s.RatePerSec = *rateFlag
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(ld.ok.Load()+ld.errs.Load()) / elapsed.Seconds()
	}
	if *timelineFlag {
		secs := make([]int, 0, len(ld.perSec))
		for sec := range ld.perSec {
			secs = append(secs, sec)
		}
		sort.Ints(secs)
		for _, sec := range secs {
			s.Timeline = append(s.Timeline, *ld.perSec[sec])
		}
	}

	enc, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghosts-loadgen: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outFlag == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*outFlag, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ghosts-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ghosts-loadgen: wrote summary to %s\n", *outFlag)
	}
	if ld.errs.Load() > 0 {
		os.Exit(1)
	}
}
