// Command ghosts runs the capture-recapture pipeline end to end and
// reproduces the paper's tables and figures against a simulated Internet.
//
// Usage:
//
//	ghosts -exp all                      # run every experiment at small scale
//	ghosts -exp table5 -scale tiny       # one experiment, fast
//	ghosts -exp fig4,fig5 -seed 7        # comma-separated experiment ids
//	ghosts -exp all -parallel 4          # cap the estimation engine at 4 workers
//	ghosts -exp summary -metrics r.json  # write the telemetry run report
//	ghosts -exp all -progress            # periodic progress lines on stderr
//	ghosts -list                         # list experiment ids
//	ghosts -h                            # full flag and experiment reference
//
// Experiment ids: table2 table3 table4 table5 table6 fig2 fig3 fig4 fig5
// fig6 fig7 fig8 fig9 fig10 fig11 fig12 churn pools estimators ports summary
//
// OBSERVABILITY.md documents the telemetry flags (-metrics, -progress,
// -debug-addr) and every metric in the run report.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -debug-addr server
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ghosts/internal/dataset"
	"ghosts/internal/experiments"
	"ghosts/internal/parallel"
	"ghosts/internal/report"
	"ghosts/internal/telemetry"
	"ghosts/internal/universe"
)

// renderable is any experiment result that can print itself.
type renderable interface{ Render(w io.Writer) }

type experiment struct {
	id    string
	title string
	run   func(*experiments.Env) renderable
}

func catalogue() []experiment {
	return []experiment{
		{"table2", "per-source unique IPs and /24s per year", func(e *experiments.Env) renderable { return experiments.Table2(e) }},
		{"table3", "cross-validation of model-selection settings", func(e *experiments.Env) renderable { return experiments.Table3(e, 2) }},
		{"table4", "ground-truth comparison for six networks", func(e *experiments.Env) renderable { return experiments.Table4(e) }},
		{"table5", "end-of-study totals by stratification", func(e *experiments.Env) renderable { return experiments.Table5(e) }},
		{"table6", "years of supply by RIR", func(e *experiments.Env) renderable { return experiments.Table6(e) }},
		{"fig2", "/24 estimates with and without spoof filtering", func(e *experiments.Env) renderable { return experiments.Figure2(e) }},
		{"fig3", "per-source cross-validation panels", func(e *experiments.Env) renderable { return experiments.Figure3(e) }},
		{"fig4", "/24 subnet growth", func(e *experiments.Env) renderable { return experiments.Figure4(e) }},
		{"fig5", "IPv4 address growth", func(e *experiments.Env) renderable { return experiments.Figure5(e) }},
		{"fig6", "estimated addresses by RIR", func(e *experiments.Env) renderable { return experiments.Figure6(e) }},
		{"fig7", "growth by allocation prefix size", func(e *experiments.Env) renderable { return experiments.Figure7(e) }},
		{"fig8", "growth by allocation age", func(e *experiments.Env) renderable { return experiments.Figure8(e) }},
		{"fig9", "growth by country", func(e *experiments.Env) renderable { return experiments.Figure9(e, 20) }},
		{"fig10", "long-term allocated/routed/used view", func(e *experiments.Env) renderable { return experiments.Figure10(e) }},
		{"fig11", "ITU user growth consistency check", func(e *experiments.Env) renderable { return experiments.Figure11(e) }},
		{"fig12", "unused-space prediction", func(e *experiments.Env) renderable { return experiments.Figure12(e) }},
		{"churn", "§4.6 dynamic-address churn (GAME sessions)", func(e *experiments.Env) renderable { return experiments.Churn(e) }},
		{"pools", "§4.6 ablation: DHCP allocation policies", func(e *experiments.Env) renderable { return experiments.Pools(e) }},
		{"estimators", "estimator family vs ground truth", func(e *experiments.Env) renderable { return experiments.Estimators(e) }},
		{"ports", "TCP port survey (footnote 2)", func(e *experiments.Env) renderable { return experiments.PortSurvey(e, 200000) }},
		{"summary", "headline numbers (abstract and §6.2)", func(e *experiments.Env) renderable { return summarize(e) }},
	}
}

// usage prints the full flag reference plus one line per experiment id, so
// `-h` is a complete index of what the binary can run (the titles mirror
// the per-experiment sections of EXPERIMENTS.md).
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, `Usage: ghosts [flags]

Reproduces the tables and figures of "Capturing Ghosts: Predicting the Used
IPv4 Space by Inferring Unobserved Addresses" (IMC 2014) against a simulated
Internet, or runs the two-stage -collect/-estimate pipeline on .gset files.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(w, "\nExperiments (-exp id[,id...], or -exp all):\n")
	for _, ex := range catalogue() {
		fmt.Fprintf(w, "  %-10s %s\n", ex.id, ex.title)
	}
	fmt.Fprintf(w, `
EXPERIMENTS.md records how each experiment compares with the paper;
OBSERVABILITY.md documents the telemetry flags (-metrics, -progress,
-debug-addr) and every metric in the run report.
`)
}

func main() {
	var (
		expFlag      = flag.String("exp", "summary", "comma-separated experiment ids, or 'all' (see -list)")
		scaleFlag    = flag.String("scale", "small", "universe scale: tiny, small, medium")
		seedFlag     = flag.Uint64("seed", 42, "simulation seed")
		listFlag     = flag.Bool("list", false, "list experiment ids and exit")
		outFlag      = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		collectFlag  = flag.String("collect", "", "simulate the final window and write per-source .gset files to this directory, then exit")
		estFlag      = flag.String("estimate", "", "load .gset files from this directory, estimate, and exit")
		parallelFlag = flag.Int("parallel", 0, "worker goroutines for the estimation engine (0 = GOMAXPROCS, 1 = serial)")
		metricsFlag  = flag.String("metrics", "", "write a JSON telemetry run report to this path (see OBSERVABILITY.md)")
		progressFlag = flag.Bool("progress", false, "print periodic telemetry progress lines to stderr")
		debugFlag    = flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	flag.Usage = usage
	flag.Parse()
	parallel.SetWorkers(*parallelFlag)

	// Any telemetry flag turns the recorder on; otherwise the instrumented
	// hot paths stay on their no-op fast path.
	start := time.Now()
	var rec *telemetry.Recorder
	if *metricsFlag != "" || *progressFlag || *debugFlag != "" {
		rec = telemetry.NewRecorder()
		telemetry.Enable(rec)
	}
	if *progressFlag {
		stop := rec.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}
	if *debugFlag != "" {
		serveDebug(*debugFlag, rec, start)
	}
	writeMetrics := func() {
		if *metricsFlag == "" {
			return
		}
		rep := rec.Report(start, time.Now(), parallel.Workers())
		if err := rep.WriteFile(*metricsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote telemetry run report to %s\n", *metricsFlag)
	}

	if *estFlag != "" {
		if err := estimate(*estFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeMetrics()
		return
	}

	cat := catalogue()
	if *listFlag {
		for _, ex := range cat {
			fmt.Printf("%-8s %s\n", ex.id, ex.title)
		}
		return
	}

	var cfg universe.Config
	switch *scaleFlag {
	case "tiny":
		cfg = universe.TinyConfig(*seedFlag)
	case "small":
		cfg = universe.SmallConfig(*seedFlag)
	case "medium":
		cfg = universe.MediumConfig(*seedFlag)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (tiny, small, medium)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, ex := range cat {
			want[ex.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	for _, ex := range cat {
		known[ex.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	fmt.Printf("# capturing ghosts — scale=%s seed=%d\n", *scaleFlag, *seedFlag)
	env := experiments.New(cfg, *seedFlag)
	if *collectFlag != "" {
		if err := collect(env, *collectFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ncollected in %v; estimate with: ghosts -estimate %s\n",
			time.Since(start).Round(time.Millisecond), *collectFlag)
		writeMetrics()
		return
	}
	for _, ex := range cat {
		if !want[ex.id] {
			continue
		}
		t0 := time.Now()
		fmt.Printf("\n== %s: %s ==\n", ex.id, ex.title)
		// The span covers both building and rendering: several experiments
		// (e.g. summary) compute lazily inside Render.
		sp := rec.StartSpan("exp." + ex.id)
		result := ex.run(env)
		result.Render(os.Stdout)
		sp.End(1)
		if *outFlag != "" {
			if err := writeOutput(*outFlag, ex.id, result); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", ex.id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %v)\n", ex.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\ntotal: %v\n", time.Since(start).Round(time.Millisecond))
	writeMetrics()
}

// serveDebug exposes the standard debug endpoints on addr: /debug/vars
// (expvar, including a live "telemetry" report) and /debug/pprof/*. The
// server runs for the life of the process; failures to bind are reported
// but never abort an estimation run.
func serveDebug(addr string, rec *telemetry.Recorder, start time.Time) {
	expvar.Publish("telemetry", expvar.Func(func() any {
		return rec.Report(start, time.Now(), parallel.Workers())
	}))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "debug server on %s: %v\n", addr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "debug endpoints: http://%s/debug/vars http://%s/debug/pprof/\n", addr, addr)
}

// writeOutput renders one experiment into <dir>/<id>.txt and its typed
// data into <dir>/<id>.json (for plotting).
func writeOutput(dir, id string, r renderable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	r.Render(f)
	if err := f.Close(); err != nil {
		return err
	}
	j, err := os.Create(filepath.Join(dir, id+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(j)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		j.Close()
		return err
	}
	return j.Close()
}

// summary prints the headline analogues of the abstract: pinged, observed
// and estimated used addresses and /24 subnets, with routed-space shares.
type summary struct {
	env *experiments.Env
}

func summarize(e *experiments.Env) renderable { return &summary{env: e} }

func (s *summary) Render(w io.Writer) {
	e := s.env
	es := e.Estimates(dataset.DefaultOptions(), false, false)
	es24 := e.Estimates(dataset.DefaultOptions(), true, false)
	last := len(es) - 1
	we, we24 := es[last], es24[last]
	t := report.Table{
		Title:   fmt.Sprintf("Headline estimates at %s (cf. abstract / §6.2)", we.Window.Label()),
		Headers: []string{"Metric", "Ping", "Observed", "Estimated", "Routed", "Obs/Routed", "Est/Routed"},
	}
	t.AddRow("IPv4 addresses",
		report.FormatFloat(we.Ping), report.FormatFloat(we.Observed),
		report.FormatFloat(we.Est), report.FormatFloat(we.Routed),
		report.Percent(we.Observed/we.Routed), report.Percent(we.Est/we.Routed))
	t.AddRow("/24 subnets",
		report.FormatFloat(we24.Ping), report.FormatFloat(we24.Observed),
		report.FormatFloat(we24.Est), report.FormatFloat(we24.Routed),
		report.Percent(we24.Observed/we24.Routed), report.Percent(we24.Est/we24.Routed))
	t.Render(w)
	growth := experiments.LinearGrowth(es, func(x experiments.WindowEstimate) float64 { return x.Est })
	growth24 := experiments.LinearGrowth(es24, func(x experiments.WindowEstimate) float64 { return x.Est })
	fmt.Fprintf(w, "Estimated growth: %s addresses/year, %s /24s/year\n",
		report.FormatFloat(growth), report.FormatFloat(growth24))
	fmt.Fprintf(w, "Estimate/ping quotient: %.2f (paper: 2.6-2.7, Heidemann factor was 1.86)\n",
		we.Est/we.Ping)
}
