// Command ghosts runs the capture-recapture pipeline end to end and
// reproduces the paper's tables and figures against a simulated Internet.
//
// Usage:
//
//	ghosts -exp all                      # run every experiment at small scale
//	ghosts -exp table5 -scale tiny       # one experiment, fast
//	ghosts -exp fig4,fig5 -seed 7        # comma-separated experiment ids
//	ghosts -exp all -parallel 4          # cap the estimation engine at 4 workers
//	ghosts -exp summary -json            # machine-readable ghosts.api/v1 envelopes
//	ghosts -exp summary -metrics r.json  # write the telemetry run report
//	ghosts -exp all -progress            # periodic progress lines on stderr
//	ghosts -list                         # list experiment ids
//	ghosts -h                            # full flag and experiment reference
//
// Experiment ids: churn estimators fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 fig11 fig12 pools ports summary table2 table3 table4 table5 table6
//
// The catalogue lives in internal/experiments and is shared with the
// ghostsd HTTP daemon, whose job API runs the same ids (see SERVING.md).
// With -json, output switches to the versioned JSON envelope
// (ghosts.api/v1) the daemon serves, so batch and served results are
// interchangeable. OBSERVABILITY.md documents the telemetry flags
// (-metrics, -progress, -debug-addr) and every metric in the run report.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -debug-addr server
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ghosts/internal/experiments"
	"ghosts/internal/parallel"
	"ghosts/internal/serve"
	"ghosts/internal/telemetry"
)

// usage prints the full flag reference plus one line per experiment id, so
// `-h` is a complete index of what the binary can run (the titles mirror
// the per-experiment sections of EXPERIMENTS.md).
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, `Usage: ghosts [flags]

Reproduces the tables and figures of "Capturing Ghosts: Predicting the Used
IPv4 Space by Inferring Unobserved Addresses" (IMC 2014) against a simulated
Internet, or runs the two-stage -collect/-estimate pipeline on .gset files.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(w, "\nExperiments (-exp id[,id...], or -exp all):\n")
	for _, ex := range experiments.Catalogue() {
		fmt.Fprintf(w, "  %-10s %s\n", ex.ID, ex.Title)
	}
	fmt.Fprintf(w, `
EXPERIMENTS.md records how each experiment compares with the paper;
SERVING.md documents the ghostsd daemon that serves the same catalogue;
OBSERVABILITY.md documents the telemetry flags (-metrics, -progress,
-debug-addr) and every metric in the run report.
`)
}

func main() {
	var (
		expFlag      = flag.String("exp", "summary", "comma-separated experiment ids, or 'all' (see -list)")
		scaleFlag    = flag.String("scale", "small", "universe scale: tiny, small, medium")
		seedFlag     = flag.Uint64("seed", 42, "simulation seed")
		listFlag     = flag.Bool("list", false, "list experiment ids and exit")
		jsonFlag     = flag.Bool("json", false, "emit ghosts.api/v1 JSON envelopes instead of text reports")
		outFlag      = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		collectFlag  = flag.String("collect", "", "simulate the final window and write per-source .gset files to this directory, then exit")
		estFlag      = flag.String("estimate", "", "load .gset files from this directory, estimate, and exit")
		replayFlag   = flag.String("replay", "", "replay a raw-IP pcap through the streaming pipeline, print the tick series, and exit (see STREAMING.md)")
		windowFlag   = flag.Duration("window", time.Minute, "streaming: width of one observation window (with -replay)")
		windowsFlag  = flag.Int("windows", 3, "streaming: live windows kept before the oldest rotates out (with -replay)")
		everyFlag    = flag.Duration("every", 30*time.Second, "streaming: re-estimation cadence (with -replay)")
		rotateFlag   = flag.Int("rotate-every", 0, "streaming: rotate windows every N accepted events instead of by wall clock; windows are then labelled by event ordinal (with -replay)")
		limitFlag    = flag.Float64("limit", 0, "streaming: right-truncation bound per window estimate, 0 = unbounded (with -replay)")
		parallelFlag = flag.Int("parallel", 0, "worker goroutines for the estimation engine (0 = GOMAXPROCS, 1 = serial)")
		metricsFlag  = flag.String("metrics", "", "write a JSON telemetry run report to this path (see OBSERVABILITY.md)")
		progressFlag = flag.Bool("progress", false, "print periodic telemetry progress lines to stderr")
		debugFlag    = flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	flag.Usage = usage
	flag.Parse()
	parallel.SetWorkers(*parallelFlag)

	// Any telemetry flag turns the recorder on; otherwise the instrumented
	// hot paths stay on their no-op fast path.
	start := time.Now()
	var rec *telemetry.Recorder
	if *metricsFlag != "" || *progressFlag || *debugFlag != "" {
		rec = telemetry.NewRecorder()
		telemetry.Enable(rec)
	}
	if *progressFlag {
		stop := rec.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}
	if *debugFlag != "" {
		serveDebug(*debugFlag, rec, start)
	}
	writeMetrics := func() {
		if *metricsFlag == "" {
			return
		}
		rep := rec.Report(start, time.Now(), parallel.Workers())
		if err := rep.WriteFile(*metricsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote telemetry run report to %s\n", *metricsFlag)
	}

	if *replayFlag != "" {
		opt := replayOptions{
			Window:      *windowFlag,
			Windows:     *windowsFlag,
			Every:       *everyFlag,
			RotateEvery: *rotateFlag,
			Limit:       *limitFlag,
			JSON:        *jsonFlag,
		}
		if err := runReplay(*replayFlag, opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeMetrics()
		return
	}

	if *estFlag != "" {
		if err := estimate(*estFlag, *jsonFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeMetrics()
		return
	}

	cat := experiments.Catalogue()
	if *listFlag {
		for _, ex := range cat {
			fmt.Printf("%-10s %s\n", ex.ID, ex.Title)
		}
		return
	}

	cfg, ok := experiments.EnvConfig(*scaleFlag, *seedFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (tiny, small, medium)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, ex := range cat {
			want[ex.ID] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	var unknown []string
	for id := range want {
		if _, ok := experiments.Lookup(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	if !*jsonFlag {
		fmt.Printf("# capturing ghosts — scale=%s seed=%d\n", *scaleFlag, *seedFlag)
	}
	env := experiments.New(cfg, *seedFlag)
	if *collectFlag != "" {
		if err := collect(env, *collectFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ncollected in %v; estimate with: ghosts -estimate %s\n",
			time.Since(start).Round(time.Millisecond), *collectFlag)
		writeMetrics()
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, ex := range cat {
		if !want[ex.ID] {
			continue
		}
		t0 := time.Now()
		// The span covers both building and rendering: several experiments
		// (e.g. summary) compute lazily inside Render.
		sp := rec.StartSpan("exp." + ex.ID)
		result := ex.Run(env)
		if *jsonFlag {
			if err := enc.Encode(experimentEnvelope(ex, *scaleFlag, *seedFlag, result)); err != nil {
				fmt.Fprintf(os.Stderr, "encoding %s: %v\n", ex.ID, err)
				os.Exit(1)
			}
		} else {
			fmt.Printf("\n== %s: %s ==\n", ex.ID, ex.Title)
			result.Render(os.Stdout)
		}
		sp.End(1)
		if *outFlag != "" {
			if err := writeOutput(*outFlag, ex.ID, result); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", ex.ID, err)
				os.Exit(1)
			}
		}
		if !*jsonFlag {
			fmt.Printf("(%s in %v)\n", ex.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*jsonFlag {
		fmt.Printf("\ntotal: %v\n", time.Since(start).Round(time.Millisecond))
	}
	writeMetrics()
}

// experimentRun is the -json envelope for one experiment: the same
// api/kind/id vocabulary the ghostsd job API uses, with the experiment's
// typed data inline.
type experimentRun struct {
	API   string `json:"api"`
	Kind  string `json:"kind"` // always "experiment"
	ID    string `json:"id"`
	Title string `json:"title"`
	Scale string `json:"scale"`
	Seed  uint64 `json:"seed"`
	Data  any    `json:"data"`
}

func experimentEnvelope(ex experiments.Experiment, scale string, seed uint64, result experiments.Renderable) experimentRun {
	return experimentRun{
		API:   serve.APIVersion,
		Kind:  "experiment",
		ID:    ex.ID,
		Title: ex.Title,
		Scale: scale,
		Seed:  seed,
		Data:  result,
	}
}

// serveDebug exposes the standard debug endpoints on addr: /debug/vars
// (expvar, including a live "telemetry" report) and /debug/pprof/*. The
// server runs for the life of the process; failures to bind are reported
// but never abort an estimation run.
func serveDebug(addr string, rec *telemetry.Recorder, start time.Time) {
	expvar.Publish("telemetry", expvar.Func(func() any {
		return rec.Report(start, time.Now(), parallel.Workers())
	}))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "debug server on %s: %v\n", addr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "debug endpoints: http://%s/debug/vars http://%s/debug/pprof/\n", addr, addr)
}

// writeOutput renders one experiment into <dir>/<id>.txt and its typed
// data into <dir>/<id>.json (for plotting).
func writeOutput(dir, id string, r experiments.Renderable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	r.Render(f)
	if err := f.Close(); err != nil {
		return err
	}
	j, err := os.Create(filepath.Join(dir, id+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(j)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		j.Close()
		return err
	}
	return j.Close()
}
