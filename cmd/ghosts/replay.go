package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"ghosts/internal/ingest"
)

// replayOptions carries the streaming flags into the -replay mode.
type replayOptions struct {
	Window      time.Duration
	Windows     int
	Every       time.Duration
	RotateEvery int
	Limit       float64
	JSON        bool
}

// runReplay streams a raw-IP pcap through the ingest pipeline and prints
// the tick series: with -json, one canonical ghosts.watch/v1 line per tick
// (byte-identical run to run, and byte-identical to what /v1/watch would
// stream for the same events — see STREAMING.md); otherwise a readable
// per-tick rendering plus a closing summary on stderr.
func runReplay(path string, opt replayOptions, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	cfg := ingest.Config{
		Window:      opt.Window,
		Windows:     opt.Windows,
		Every:       opt.Every,
		RotateEvery: opt.RotateEvery,
		Limit:       opt.Limit,
	}
	if opt.JSON {
		cfg.OnTick = func(tk *ingest.Tick) { out.Write(tk.Encode()) }
	} else {
		cfg.OnTick = func(tk *ingest.Tick) { renderTick(out, tk) }
	}
	p := ingest.New(cfg)
	st, err := ingest.Replay(f, p)
	if err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replayed %s: %d packets (%d malformed), %d vantages, %d ticks, %d events dropped\n",
		path, st.Packets, st.Malformed, st.Sources, st.Ticks, st.Dropped)
	return nil
}

// renderTick prints one tick in the human format: one header line and one
// line per live window, oldest first.
func renderTick(w io.Writer, tk *ingest.Tick) {
	fmt.Fprintf(w, "tick %d @ %s\n", tk.Seq, tk.At)
	for _, we := range tk.Windows {
		mark := ""
		if we.Warm {
			mark = " warm"
		}
		if !we.Estimated {
			fmt.Fprintf(w, "  [%s) sources=%d observed=%d (not estimable)\n",
				we.Start, we.Sources, we.Observed)
			continue
		}
		fmt.Fprintf(w, "  [%s) sources=%d observed=%d N=%.1f unseen=%.1f%s\n",
			we.Start, we.Sources, we.Observed, we.Estimate, we.Unseen, mark)
	}
}
