package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ghosts/internal/core"
	"ghosts/internal/dataset"
	"ghosts/internal/experiments"
	"ghosts/internal/ipset"
	"ghosts/internal/report"
	"ghosts/internal/serve"
)

// The two-stage pipeline: `-collect <dir>` simulates the final window's
// nine sources and persists each observation set as <dir>/<SOURCE>.gset
// (the ipset binary codec); `-estimate <dir>` later loads whatever .gset
// files are present and runs the estimator on them. This is the shape of a
// real deployment, where collection and estimation are separated by months
// and machines — and it means the estimator can be pointed at *real*
// observation sets, not just simulated ones.

// collect writes the final window's observation sets into dir.
func collect(env *experiments.Env, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b := env.Bundle(len(env.Win)-1, dataset.DefaultOptions())
	for i, name := range b.Names {
		path := filepath.Join(dir, string(name)+".gset")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := b.Sets[i].WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, _ := os.Stat(path)
		fmt.Printf("wrote %-28s %9d addresses, %8d bytes\n", path, b.Sets[i].Len(), st.Size())
	}
	// The routed-space bound travels with the data.
	meta := filepath.Join(dir, "routed.txt")
	if err := os.WriteFile(meta, []byte(fmt.Sprintf("%d %d\n", b.RoutedAddrs, b.Routed24)), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (truncation bounds)\n", meta)
	return nil
}

// estimate loads every .gset in dir and runs the paper-default estimator.
// With jsonOut, the result is emitted as the ghosts.api/v1 estimate
// envelope through the same serve.Compute/Encode path the ghostsd daemon
// uses, so CLI and server responses are byte-identical for the same data.
func estimate(dir string, jsonOut bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".gset") {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		return fmt.Errorf("need at least two .gset files in %s, found %d", dir, len(names))
	}
	sort.Strings(names)
	var sets []*ipset.Set
	var labels []string
	for _, n := range names {
		f, err := os.Open(filepath.Join(dir, n))
		if err != nil {
			return err
		}
		s := ipset.New()
		_, err = s.ReadFrom(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		sets = append(sets, s)
		labels = append(labels, strings.TrimSuffix(n, ".gset"))
	}
	limit := math.Inf(1)
	if raw, err := os.ReadFile(filepath.Join(dir, "routed.txt")); err == nil {
		var addrs, s24 uint64
		if _, err := fmt.Sscan(string(raw), &addrs, &s24); err == nil && addrs > 0 {
			limit = float64(addrs)
		}
	}

	tb := core.TableFromSets(sets, labels)
	if jsonOut {
		req := &serve.EstimateRequest{Sources: labels, Counts: tb.Counts}
		if !math.IsInf(limit, 1) {
			req.Limit = limit
		}
		if err := req.Normalize(); err != nil {
			return err
		}
		resp, err := serve.Compute(context.Background(), req)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(resp.Encode())
		return err
	}
	t := report.Table{Title: "Loaded observation sets", Headers: []string{"Source", "Addresses", "/24s"}}
	for i, l := range labels {
		t.AddRow(l, report.Group(int64(sets[i].Len())), report.Group(int64(sets[i].Slash24Len())))
	}
	t.Render(os.Stdout)

	est := core.DefaultEstimator(limit)
	res, err := est.Estimate(tb)
	if err != nil {
		return err
	}
	fmt.Printf("\nObserved by any source: %s\n", report.Group(res.Observed))
	fmt.Printf("CR estimate:            %s  [%s, %s]\n",
		report.FormatFloat(res.N), report.FormatFloat(res.Interval.Lo), report.FormatFloat(res.Interval.Hi))
	fmt.Printf("Ghosts (unseen):        %s\n", report.FormatFloat(res.Unseen))
	terms := "independence"
	if len(res.Model.Terms) > 0 {
		parts := make([]string, len(res.Model.Terms))
		for i, h := range res.Model.Terms {
			parts[i] = core.TermName(h)
		}
		terms = strings.Join(parts, " ")
	}
	fmt.Printf("Selected model:         %s (divisor %g)\n", terms, res.Divisor)

	// Pairwise dependence diagnostics (§3.2.2).
	dep := core.Dependence(tb)
	d := report.Table{Title: "\nPairwise source dependence (log odds ratios)", Headers: append([]string{""}, labels...)}
	for i, l := range labels {
		row := []string{l}
		for j := range labels {
			row = append(row, fmt.Sprintf("%+.2f", dep[i][j]))
		}
		d.AddRow(row...)
	}
	d.Render(os.Stdout)
	return nil
}
