// Command ghostsd is the long-running estimation service: the ghosts
// capture-recapture engine behind an HTTP API, with a result cache,
// single-flight deduplication of identical requests, bounded admission in
// front of the GLM/bootstrap hot paths, and an async job API over the
// experiment catalogue.
//
// The same binary also runs as a fleet router (-router): a stateless
// front that consistent-hashes request keys across worker processes, with
// health-gated membership, retry/hedging, and verbatim response relay
// (FLEET.md documents the full protocol).
//
// Usage:
//
//	ghostsd                                  # serve on :8080
//	ghostsd -addr localhost:9090             # explicit address
//	ghostsd -slots 2 -queue 128              # widen admission bounds
//	ghostsd -compute-timeout 30s             # bound each estimate's compute (504 past it)
//	ghostsd -cache-size 1024 -cache-ttl 1h   # result-cache tuning
//	ghostsd -metrics run.json                # telemetry report on shutdown
//	ghostsd -netflow-listen                  # live NetFlow ingest + /v1/watch tick stream
//	ghostsd -netflow-listen -watch-window 1m -watch-every 30s -watch-windows 3
//	ghostsd -peers http://host2:8080         # worker: fill cache misses from peers first
//	ghostsd -router http://h1:8080,http://h2:8080 -addr :8000   # fleet router mode (static seeds)
//	ghostsd -router-mode -addr :8000         # fleet router with no static workers (dynamic joins only)
//	ghostsd -join http://router:8000         # worker: self-register at the router under a heartbeat lease
//	ghostsd -join http://router:8000 -advertise http://10.0.0.7:8080 -lease-ttl 15s
//
// Endpoints (SERVING.md documents schemas and semantics; STREAMING.md
// covers /v1/watch):
//
//	POST /v1/estimate     capture-history estimate with profile interval
//	GET  /v1/experiments  the experiment catalogue
//	POST /v1/jobs         launch an experiment asynchronously
//	GET  /v1/jobs/{id}    job status and result
//	GET  /v1/watch        SSE stream of rolling window estimates (with -netflow-listen)
//	GET  /v1/cache/{key}  stored response bytes for a canonical key (fleet peer fill)
//	GET  /v1/loadz        admission-gate and cache occupancy snapshot
//
// Router-mode endpoints additionally include dynamic membership
// (FLEET.md): POST /v1/fleet/join (register/renew a worker under a
// heartbeat lease), POST /v1/fleet/leave (drain-time deregister), and
// GET /v1/fleet (registered members with liveness and lease state).
//
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining)
//	GET  /debug/vars      expvar, including the live telemetry report
//	GET  /debug/pprof/    profiling
//
// SIGINT/SIGTERM begin a graceful shutdown: readiness flips, in-flight
// requests drain, pending jobs are cancelled and running jobs complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ghosts/internal/fleet"
	"ghosts/internal/ingest"
	"ghosts/internal/netflow"
	"ghosts/internal/parallel"
	"ghosts/internal/serve"
	"ghosts/internal/server"
	"ghosts/internal/telemetry"
)

// splitURLs parses a comma-separated worker/peer list, normalising each
// entry to a base URL: a bare host:port gains http://, trailing slashes
// are trimmed so path concatenation stays clean.
func splitURLs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	return out
}

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address")
		parallelFlag = flag.Int("parallel", 0, "worker goroutines per computation (0 = GOMAXPROCS, 1 = serial)")
		slotsFlag    = flag.Int("slots", 1, "concurrent computations admitted (each fans out across -parallel workers)")
		queueFlag    = flag.Int("queue", 64, "admission-queue depth before requests are shed with 503")
		cacheFlag    = flag.Int("cache-size", 256, "result-cache entries (negative disables caching)")
		ttlFlag      = flag.Duration("cache-ttl", 15*time.Minute, "result-cache entry lifetime (negative disables expiry)")
		jobsFlag     = flag.Int("max-jobs", 64, "job-store capacity (oldest finished jobs are evicted)")
		drainFlag    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
		computeFlag  = flag.Duration("compute-timeout", 0, "per-request compute deadline for /v1/estimate (0 = none; past it the request fails with 504)")
		metricsFlag  = flag.String("metrics", "", "write a JSON telemetry run report here on shutdown (see OBSERVABILITY.md)")
		netflowFlag  = flag.Bool("netflow-listen", false, "receive NetFlow v5 on loopback UDP (address printed at startup) and stream windowed estimates on GET /v1/watch")
		wwindowFlag  = flag.Duration("watch-window", time.Minute, "streaming: width of one observation window (with -netflow-listen)")
		wcountFlag   = flag.Int("watch-windows", 3, "streaming: live windows kept before the oldest rotates out (with -netflow-listen)")
		weveryFlag   = flag.Duration("watch-every", 30*time.Second, "streaming: re-estimation cadence (with -netflow-listen)")
		wrotateFlag  = flag.Int("watch-rotate-every", 0, "streaming: rotate windows every N accepted events instead of by wall clock; windows are then labelled by event ordinal (with -netflow-listen)")
		routerFlag   = flag.String("router", "", "fleet router mode: comma-separated static worker base URLs to route across (disables the local engine)")
		routerModeF  = flag.Bool("router-mode", false, "fleet router mode with no static workers: membership comes entirely from POST /v1/fleet/join")
		joinFlag     = flag.String("join", "", "worker mode: router base URL to self-register at under a heartbeat lease (peers are then derived from GET /v1/fleet)")
		advertiseF   = flag.String("advertise", "", "worker mode: base URL to advertise on -join (default http://<bound addr>; set it when listening on a wildcard address)")
		leaseFlag    = flag.Duration("lease-ttl", 0, "lease duration: requested on -join (worker), granted by default to joiners (router); 0 = the fleet default (15s)")
		peersFlag    = flag.String("peers", "", "worker mode: comma-separated static peer base URLs to consult for cached results before computing (X-Ghosts-Cache: peer); merged with -join-derived peers")
		retriesFlag  = flag.Int("retries", 2, "router: additional workers to try after a retryable failure (conn error, 503, 504); negative disables retries")
		hedgeFlag    = flag.Duration("hedge-after", 0, "router: launch the next candidate in parallel past this latency (0 disables hedging, preserving the fleet-wide single-compute guarantee)")
		probeFlag    = flag.Duration("probe-every", time.Second, "router: /readyz probe cadence for ring membership")
		boundFlag    = flag.Float64("load-bound", 1.25, "router: bounded-load factor c; a worker over ceil(c*total/live) in-flight forwards yields to the next ring candidate")
	)
	flag.Parse()
	parallel.SetWorkers(*parallelFlag)

	// The daemon always records telemetry: the live report feeds
	// /debug/vars and the per-route histograms in the shutdown report.
	start := time.Now()
	rec := telemetry.NewRecorder()
	telemetry.Enable(rec)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Router mode: no local engine, cache or gate — just the ring, the
	// registry, the health prober and the forwarding logic from
	// internal/fleet. -router seeds static members; -router-mode starts
	// with none and relies entirely on dynamic joins.
	if *routerFlag != "" || *routerModeF {
		rt, err := fleet.NewRouter(fleet.RouterConfig{
			Workers:      splitURLs(*routerFlag),
			Retries:      *retriesFlag,
			HedgeAfter:   *hedgeFlag,
			ProbeEvery:   *probeFlag,
			LoadBound:    *boundFlag,
			LeaseTTL:     *leaseFlag,
			DrainTimeout: *drainFlag,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostsd: %v\n", err)
			os.Exit(1)
		}
		err = rt.Run(ctx, *addrFlag)
		if *metricsFlag != "" {
			rep := rec.Report(start, time.Now(), parallel.Workers())
			if werr := rep.WriteFile(*metricsFlag); werr != nil {
				fmt.Fprintf(os.Stderr, "ghostsd: writing metrics report: %v\n", werr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "ghostsd: wrote telemetry run report to %s\n", *metricsFlag)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostsd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	frontCfg := serve.FrontConfig{
		CacheSize: *cacheFlag,
		CacheTTL:  *ttlFlag,
		Slots:     *slotsFlag,
		MaxQueue:  *queueFlag,
	}
	// Peer cache fill: static peers come from -peers; with -join the list
	// is additionally kept in sync with the router's member registry after
	// every heartbeat (static entries always stay).
	staticPeers := splitURLs(*peersFlag)
	var filler *fleet.PeerFiller
	if len(staticPeers) > 0 || *joinFlag != "" {
		filler = fleet.NewPeerFiller(staticPeers, 0, 0)
		frontCfg.PeerFill = filler.Fill
	}
	front := serve.NewFront(frontCfg)

	// -netflow-listen turns on the streaming side: a NetFlow v5 collector
	// feeding the sliding-window pipeline behind GET /v1/watch. Vantages
	// are keyed by exporter address; event time is the export header's
	// UnixSecs, and a wall-clock ticker keeps estimates flowing through
	// quiet periods (the pipeline's logical clock is the max of both).
	var pipe *ingest.Pipeline
	if *netflowFlag {
		pipe = ingest.New(ingest.Config{
			Window:      *wwindowFlag,
			Windows:     *wcountFlag,
			Every:       *weveryFlag,
			RotateEvery: *wrotateFlag,
		})
		// The header timestamp is attacker-controlled wire input: one
		// datagram stamped far in the future would drag the pipeline's
		// monotonic logical clock there for good, turning every genuine
		// event into a late drop. Ordinary exporter clock skew is seconds;
		// reject anything further ahead of the wall clock than that, with
		// a margin (the drop is counted in ingest.dropped).
		const maxFutureSkew = 5 * time.Minute
		col, err := netflow.NewCollectorFunc(func(from *net.UDPAddr, r netflow.Record, at time.Time) {
			if at.After(time.Now().Add(maxFutureSkew)) {
				telemetry.Active().IngestEventDropped()
				return
			}
			src, err := pipe.Source(from.IP.String())
			if err != nil {
				src = -1 // beyond the 16-vantage table limit: Offer counts the drop
			}
			pipe.Offer(src, r.Src, at)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostsd: netflow collector: %v\n", err)
			os.Exit(1)
		}
		defer col.Close()
		fmt.Fprintf(os.Stderr, "ghostsd: netflow collector on udp://%s, tick stream on GET /v1/watch\n", col.Addr())
		go func() {
			tick := time.NewTicker(*weveryFlag)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-tick.C:
					pipe.Advance(now.UTC())
				}
			}
		}()
	}

	// The joiner self-registers this worker at a router and deregisters at
	// drain time. It is bound late (the advertised URL may derive from the
	// listen address, known only once Run is serving), so PreDrain loads it
	// through an atomic pointer.
	var joiner atomic.Pointer[fleet.Joiner]
	srv := server.New(server.Config{
		Front:          front,
		MaxJobs:        *jobsFlag,
		DrainTimeout:   *drainFlag,
		ComputeTimeout: *computeFlag,
		Recorder:       rec,
		Watch:          pipe,
		PreDrain: func(ctx context.Context) {
			if j := joiner.Load(); j != nil {
				if err := j.Leave(ctx); err != nil {
					fmt.Fprintf(os.Stderr, "ghostsd: fleet deregister: %v\n", err)
				}
			}
		},
	})

	if *joinFlag != "" {
		go func() {
			self := *advertiseF
			if self == "" {
				for srv.Addr() == "" {
					select {
					case <-ctx.Done():
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
				self = "http://" + srv.Addr()
			}
			j, err := fleet.NewJoiner(*joinFlag, self, *leaseFlag, os.Stderr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ghostsd: %v\n", err)
				return
			}
			j.OnPeers = func(peers []string) {
				merged := append(append([]string(nil), staticPeers...), peers...)
				filler.SetPeers(merged)
			}
			joiner.Store(j)
			j.Run(ctx)
		}()
	}

	err := srv.Run(ctx, *addrFlag)
	if *metricsFlag != "" {
		rep := rec.Report(start, time.Now(), parallel.Workers())
		if werr := rep.WriteFile(*metricsFlag); werr != nil {
			fmt.Fprintf(os.Stderr, "ghostsd: writing metrics report: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ghostsd: wrote telemetry run report to %s\n", *metricsFlag)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghostsd: %v\n", err)
		os.Exit(1)
	}
}
