// Command ghostsd is the long-running estimation service: the ghosts
// capture-recapture engine behind an HTTP API, with a result cache,
// single-flight deduplication of identical requests, bounded admission in
// front of the GLM/bootstrap hot paths, and an async job API over the
// experiment catalogue.
//
// Usage:
//
//	ghostsd                                  # serve on :8080
//	ghostsd -addr localhost:9090             # explicit address
//	ghostsd -slots 2 -queue 128              # widen admission bounds
//	ghostsd -compute-timeout 30s             # bound each estimate's compute (504 past it)
//	ghostsd -cache-size 1024 -cache-ttl 1h   # result-cache tuning
//	ghostsd -metrics run.json                # telemetry report on shutdown
//
// Endpoints (SERVING.md documents schemas and semantics):
//
//	POST /v1/estimate     capture-history estimate with profile interval
//	GET  /v1/experiments  the experiment catalogue
//	POST /v1/jobs         launch an experiment asynchronously
//	GET  /v1/jobs/{id}    job status and result
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining)
//	GET  /debug/vars      expvar, including the live telemetry report
//	GET  /debug/pprof/    profiling
//
// SIGINT/SIGTERM begin a graceful shutdown: readiness flips, in-flight
// requests drain, pending jobs are cancelled and running jobs complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghosts/internal/parallel"
	"ghosts/internal/serve"
	"ghosts/internal/server"
	"ghosts/internal/telemetry"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address")
		parallelFlag = flag.Int("parallel", 0, "worker goroutines per computation (0 = GOMAXPROCS, 1 = serial)")
		slotsFlag    = flag.Int("slots", 1, "concurrent computations admitted (each fans out across -parallel workers)")
		queueFlag    = flag.Int("queue", 64, "admission-queue depth before requests are shed with 503")
		cacheFlag    = flag.Int("cache-size", 256, "result-cache entries (negative disables caching)")
		ttlFlag      = flag.Duration("cache-ttl", 15*time.Minute, "result-cache entry lifetime (negative disables expiry)")
		jobsFlag     = flag.Int("max-jobs", 64, "job-store capacity (oldest finished jobs are evicted)")
		drainFlag    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
		computeFlag  = flag.Duration("compute-timeout", 0, "per-request compute deadline for /v1/estimate (0 = none; past it the request fails with 504)")
		metricsFlag  = flag.String("metrics", "", "write a JSON telemetry run report here on shutdown (see OBSERVABILITY.md)")
	)
	flag.Parse()
	parallel.SetWorkers(*parallelFlag)

	// The daemon always records telemetry: the live report feeds
	// /debug/vars and the per-route histograms in the shutdown report.
	start := time.Now()
	rec := telemetry.NewRecorder()
	telemetry.Enable(rec)

	front := serve.NewFront(serve.FrontConfig{
		CacheSize: *cacheFlag,
		CacheTTL:  *ttlFlag,
		Slots:     *slotsFlag,
		MaxQueue:  *queueFlag,
	})
	srv := server.New(server.Config{
		Front:          front,
		MaxJobs:        *jobsFlag,
		DrainTimeout:   *drainFlag,
		ComputeTimeout: *computeFlag,
		Recorder:       rec,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := srv.Run(ctx, *addrFlag)
	if *metricsFlag != "" {
		rep := rec.Report(start, time.Now(), parallel.Workers())
		if werr := rep.WriteFile(*metricsFlag); werr != nil {
			fmt.Fprintf(os.Stderr, "ghostsd: writing metrics report: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ghostsd: wrote telemetry run report to %s\n", *metricsFlag)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghostsd: %v\n", err)
		os.Exit(1)
	}
}
