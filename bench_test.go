package ghosts

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark runs the corresponding experiment end to end
// (simulate → collect → preprocess → estimate → summarise) and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's results at simulation scale. The environment is
// shared and cached across benchmarks (as the experiments share their
// pipeline), so the first benchmark touching a pipeline pays its cost.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"ghosts/internal/core"
	"ghosts/internal/crossval"
	"ghosts/internal/dataset"
	"ghosts/internal/experiments"
	"ghosts/internal/ingest"
	"ghosts/internal/ipv4"
	"ghosts/internal/rng"
	"ghosts/internal/sources"
	"ghosts/internal/strata"
	"ghosts/internal/universe"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.New(universe.TinyConfig(5), 99)
		benchEnv.MaxTerms = 3
	})
	return benchEnv
}

func BenchmarkTable2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Table2(e)
		d.Render(io.Discard)
		last := d.Rows[len(d.Rows)-1]
		b.ReportMetric(float64(last.IPs[2013]), "TPING-2013-IPs")
	}
}

func BenchmarkTable3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Table3(e, 4)
		d.Render(io.Discard)
		for _, r := range d.Rows {
			if r.Setting == "BIC-adaptive1000" {
				b.ReportMetric(r.RMSEAddrs, "RMSE-IPs")
				b.ReportMetric(r.RMSES24, "RMSE-s24")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Table4(e)
		d.Render(io.Discard)
		var crErr, obsErr float64
		for _, r := range d.Rows {
			crErr += math.Abs(r.TruncPct - r.TruthPct)
			obsErr += math.Abs(r.ObsPct - r.TruthPct)
		}
		n := float64(len(d.Rows))
		b.ReportMetric(100*crErr/n, "CR-err-pct")
		b.ReportMetric(100*obsErr/n, "obs-err-pct")
	}
}

func BenchmarkTable5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Table5(e)
		d.Render(io.Discard)
		b.ReportMetric(d.EstAddrs["None"], "est-IPs")
		b.ReportMetric(d.EstAddrs["None"]/d.Ping[0], "est-over-ping")
		b.ReportMetric(d.EstS24["None"], "est-s24")
	}
}

func BenchmarkTable6(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Table6(e)
		d.Render(io.Discard)
		b.ReportMetric(d.World.GrowthIPs, "world-IP-growth")
		if !math.IsInf(d.World.RunoutIPs, 1) {
			b.ReportMetric(d.World.RunoutIPs, "world-runout-year")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure2(e)
		d.Render(io.Discard)
		last := len(d.Labels) - 1
		b.ReportMetric(d.UnfilteredEst[last]/d.FilteredEst[last], "spike-blowup")
		b.ReportMetric(d.FilteredEst[last]/d.NoNetflowEst[last], "filtered-vs-clean")
	}
}

func BenchmarkFigure3(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure3(e)
		d.Render(io.Discard)
		var sum float64
		for _, en := range d.Entries {
			sum += en.Est
		}
		b.ReportMetric(sum/float64(len(d.Entries)), "mean-normalised-est")
	}
}

func BenchmarkFigure4(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure4(e)
		d.Render(io.Discard)
		n := len(d.Labels) - 1
		b.ReportMetric(d.Estimated[n]/d.Estimated[0], "s24-growth")
		b.ReportMetric(d.Estimated[n]/d.Observed[n], "est-over-obs")
	}
}

func BenchmarkFigure5(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure5(e)
		d.Render(io.Discard)
		n := len(d.Labels) - 1
		b.ReportMetric(d.Estimated[n]/d.Estimated[0], "IP-growth")
		b.ReportMetric(d.Estimated[n]/d.Observed[n], "est-over-obs")
	}
}

func BenchmarkFigure6(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure6(e)
		d.Render(io.Discard)
		b.ReportMetric(float64(len(d.Series)), "RIR-series")
	}
}

func BenchmarkFigure7(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure7(e)
		d.Render(io.Discard)
		b.ReportMetric(float64(len(d.Labels)), "prefix-strata")
	}
}

func BenchmarkFigure8(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure8(e)
		d.Render(io.Discard)
		b.ReportMetric(float64(len(d.Labels)), "age-strata")
	}
}

func BenchmarkFigure9(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure9(e, 20)
		d.Render(io.Discard)
		b.ReportMetric(float64(len(d.Labels)), "countries")
	}
}

func BenchmarkFigure10(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure10(e)
		d.Render(io.Discard)
		b.ReportMetric(d.Allocated[len(d.Allocated)-1], "allocated-2014")
	}
}

func BenchmarkFigure11(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure11(e)
		d.Render(io.Discard)
		b.ReportMetric(d.UserGrowth, "user-growth-M")
		b.ReportMetric(100*d.MeasuredRel, "measured-rel-growth-pct")
	}
}

func BenchmarkFigure12(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Figure12(e)
		d.Render(io.Discard)
		b.ReportMetric(d.Ghosts, "ghosts")
		b.ReportMetric(d.Model24, "model-s24-filled")
	}
}

// ---------------------------------------------------------- microbenchmarks

// BenchmarkSelectModel isolates the stepwise model search — the dominant
// consumer of GLM fits — on the nine-source end-of-study table, so
// kernel-level changes (the lattice IRLS path, warm starts) show up
// directly in the snapshot diffs instead of being averaged into a whole
// experiment.
func BenchmarkSelectModel(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	tb := core.TableFromSets(bundle.Sets, bundle.NameStrings())
	opt := core.SelectionOptions{
		IC: core.BIC, Divisor: core.Adaptive1000,
		Limit: float64(bundle.RoutedAddrs), MaxTerms: 3, MaxOrder: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := core.SelectModel(tb, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.NumParams()), "params")
	}
}

// BenchmarkProfileInterval isolates one profile-likelihood interval on the
// selected end-of-study model: dozens of pinned-cell refits per interval,
// the workload the profiler's warm starts and the lattice Cell0 path serve.
func BenchmarkProfileInterval(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	tb := core.TableFromSets(bundle.Sets, bundle.NameStrings())
	limit := float64(bundle.RoutedAddrs)
	opt := core.SelectionOptions{
		IC: core.BIC, Divisor: core.Adaptive1000,
		Limit: limit, MaxTerms: 3, MaxOrder: 2,
	}
	m, _, err := core.SelectModel(tb, opt)
	if err != nil {
		b.Fatal(err)
	}
	fit, err := core.FitModel(tb, m, limit, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv, err := core.ProfileInterval(tb, fit, limit, 1e-7, limit)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(iv.Hi-iv.Lo, "width")
	}
}

// BenchmarkStratSeries isolates the stratified-sweep table-building paths
// on the end-of-study window: the one-pass labelled histogram fold versus
// the dense Split path that materialises per-stratum sets and folds each
// (DESIGN.md §8.2). The series sub-benchmark runs the whole
// eleven-window per-stratum estimation through the dense reference, so
// the end-to-end sweep cost stays visible in snapshots even though the
// figures hit the env cache.
func BenchmarkStratSeries(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	lt := e.LabelTable(strata.ByPrefix)
	b.Run("fold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hs := strata.CaptureHistograms(lt, bundle.Sets)
			n := 0
			hs.Range(func(string, []int64) bool { n++; return true })
			b.ReportMetric(float64(n), "strata")
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			split := strata.Split(e.U, bundle.Sets, strata.ByPrefix)
			for _, group := range split {
				core.TableFromSets(group, nil)
			}
			b.ReportMetric(float64(len(split)), "strata")
		}
	})
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			series := e.StratSeriesDense(strata.ByPrefix, false)
			b.ReportMetric(float64(len(series[len(series)-1])), "strata-last")
		}
	})
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationDivisor compares end-of-study estimates across the
// divisor settings (the design choice of §3.3.2): large fixed divisors
// simplify the model, adaptive tracks the data.
func BenchmarkAblationDivisor(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	tb := core.TableFromSets(bundle.Sets, bundle.NameStrings())
	for i := 0; i < b.N; i++ {
		for _, s := range experiments.Table3Settings() {
			est := core.NewEstimator(s.IC, s.Divisor, float64(bundle.RoutedAddrs))
			est.MaxTerms = 3
			est.MaxOrder = 2
			res, err := est.EstimatePoint(tb)
			if err != nil {
				b.Fatal(err)
			}
			if s.Name == "BIC-adaptive1000" || s.Name == "AIC-fixed1" {
				b.ReportMetric(res.N, s.Name)
			}
		}
	}
}

// BenchmarkAblationTruncation compares plain-Poisson and right-truncated
// estimates (§3.3.1/§5.2: truncation stabilises small strata).
func BenchmarkAblationTruncation(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	tb := core.TableFromSets(bundle.Sets, bundle.NameStrings())
	for i := 0; i < b.N; i++ {
		plain, err := e.Estimator(math.Inf(1)).EstimatePoint(tb)
		if err != nil {
			b.Fatal(err)
		}
		trunc, err := e.Estimator(float64(bundle.RoutedAddrs)).EstimatePoint(tb)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.N, "poisson")
		b.ReportMetric(trunc.N, "truncated")
	}
}

// BenchmarkAblationSources measures how the estimate converges as sources
// are added (the value of source diversity, §4.2).
func BenchmarkAblationSources(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	truth := float64(e.U.UsedAt(bundle.Window.End).Len())
	for i := 0; i < b.N; i++ {
		for _, k := range []int{3, 5, 7, len(bundle.Sets)} {
			est, _ := e.EstimateSets(bundle.Sets[:k], float64(bundle.RoutedAddrs))
			b.ReportMetric(100*est/truth, fmt.Sprintf("pct-of-truth-%dsrc", k))
		}
	}
}

// BenchmarkAblationLP contrasts two-source Lincoln-Petersen estimates with
// the full log-linear fit (§3.2.2: correlated sources bias L-P).
func BenchmarkAblationLP(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(10, dataset.DefaultOptions())
	tb := core.TableFromSets(bundle.Sets, bundle.NameStrings())
	pingIdx, webIdx, gameIdx := -1, -1, -1
	for i, n := range bundle.Names {
		switch n {
		case sources.IPING:
			pingIdx = i
		case sources.WEB:
			webIdx = i
		case sources.GAME:
			gameIdx = i
		}
	}
	for i := 0; i < b.N; i++ {
		llm, err := e.Estimator(float64(bundle.RoutedAddrs)).EstimatePoint(tb)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(llm.N, "LLM")
		b.ReportMetric(core.LincolnPetersenPair(tb, pingIdx, webIdx), "LP-ping-web")
		b.ReportMetric(core.LincolnPetersenPair(tb, webIdx, gameIdx), "LP-web-game")
	}
}

// BenchmarkCrossValidation runs the full §5 harness on one window.
func BenchmarkCrossValidation(b *testing.B) {
	e := env(b)
	bundle := e.Bundle(9, dataset.DefaultOptions())
	est := core.NewEstimator(core.BIC, core.Adaptive1000, math.Inf(1))
	est.MaxTerms = 3
	est.MaxOrder = 2
	for i := 0; i < b.N; i++ {
		res := crossval.Run(bundle.Names, bundle.Sets, est, false)
		rmse, mae := crossval.Errors(res)
		b.ReportMetric(rmse, "rmse")
		b.ReportMetric(mae, "mae")
	}
}

// BenchmarkChurn reproduces the §4.6 in-text churn numbers.
func BenchmarkChurn(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Churn(e)
		d.Render(io.Discard)
		b.ReportMetric(d.AddrGrowth, "addr-growth-x")
		b.ReportMetric(d.S24Growth, "s24-growth-x")
	}
}

// BenchmarkAblationPools contrasts DHCP allocation policies (§4.6).
func BenchmarkAblationPools(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Pools(e)
		d.Render(io.Discard)
		last := len(d.Months) - 1
		b.ReportMetric(float64(d.LowestEver[last]), "lowest-free-ever")
		b.ReportMetric(float64(d.UniformEver[last]), "uniform-ever")
	}
}

// BenchmarkEstimators compares the estimator family against ground truth.
func BenchmarkEstimators(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.Estimators(e)
		d.Render(io.Discard)
		for _, r := range d.Rows {
			switch r.Name {
			case "Log-linear CR (paper)":
				b.ReportMetric(r.ErrPct, "LLM-err-pct")
			case "Heidemann 1.86 x ping":
				b.ReportMetric(r.ErrPct, "heidemann-err-pct")
			}
		}
	}
}

// BenchmarkPortSurvey reproduces footnote 2's port-responsiveness survey.
func BenchmarkPortSurvey(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		d := experiments.PortSurvey(e, 60000)
		d.Render(io.Discard)
		b.ReportMetric(float64(d.Responders[80]), "port80")
		b.ReportMetric(float64(d.Responders[443]), "port443")
	}
}

// BenchmarkStreamTick measures one streaming re-estimation tick against a
// pre-filled window ring, sweeping the fraction of the population that
// arrives as fresh events between ticks. Each iteration is (dirty events
// offered) + (one forced tick), so ns/op is ns/tick at that churn rate.
// "incremental" is the default per-window capture-mask histogram
// (hist[old]--, hist[old|bit]++ per event, the tick reads the histogram);
// "rebuild" is Config.Rebuild, which re-folds every window set through
// ipset.CaptureHistogram on each tick. STREAMING.md and DESIGN.md §10
// derive why the gap widens as the dirty fraction shrinks; bench.sh
// records both series so the speedup is a committed number.
func BenchmarkStreamTick(b *testing.B) {
	const (
		perSource = 40000 // addresses offered per source per window
		windows   = 3
		nsources  = 3
	)
	for _, mode := range []struct {
		name    string
		rebuild bool
	}{{"incremental", false}, {"rebuild", true}} {
		for _, dirtyPct := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s/dirty=%d%%", mode.name, dirtyPct), func(b *testing.B) {
				p := ingest.New(ingest.Config{
					Window:  time.Hour,
					Windows: windows,
					Every:   30 * time.Minute,
					Sources: []string{"v1", "v2", "v3"},
					Rebuild: mode.rebuild,
				})
				r := rng.New(7)
				start := time.Unix(1700000000, 0).UTC()
				// Fill the ring: per window, perSource draws per source
				// from a 2^28 span, so addresses land on mostly-distinct
				// /24 pages (the realistic sparse regime where the
				// set-fold pays per page, not per word).
				at := start
				for w := 0; w < windows; w++ {
					at = start.Add(time.Duration(w)*time.Hour + time.Minute)
					for i := 0; i < perSource; i++ {
						a := ipv4.Addr(r.Uint64n(1 << 28))
						for s := 0; s < nsources; s++ {
							if r.Bernoulli(0.6) {
								p.Offer(s, a, at)
							}
						}
					}
				}
				p.Flush() // settle: every window estimated once, warm starts primed
				dirty := perSource * dirtyPct / 100
				lat := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < dirty; j++ {
						p.Offer(j%nsources, ipv4.Addr(r.Uint64n(1<<28)), at)
					}
					t0 := time.Now()
					if tk := p.Flush(); tk == nil || len(tk.Windows) == 0 {
						b.Fatal("flush produced no tick")
					}
					lat = append(lat, time.Since(t0))
				}
				b.StopTimer()
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				p99 := lat[len(lat)*99/100]
				b.ReportMetric(float64(p99.Microseconds()), "tick-p99-us")
				b.ReportMetric(float64(dirty*b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}
