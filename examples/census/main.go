// Census: run the packet-level ICMP and TCP-SYN census against a simulated
// Internet, then combine both probes with a passive log into a
// capture-recapture estimate for one /16.
//
// The prober builds real ICMP echo / TCP SYN packets (checksums and all),
// ships them over a UDP-loopback transport to a responder that models
// firewalls, rate limits, loss, RST-ing middleboxes and silent hosts, and
// classifies the responses by the paper's §4.4 rules. The same sweep then
// runs over the in-memory transport to show both transports agree.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"math"
	"time"

	"ghosts/internal/core"
	"ghosts/internal/inet"
	"ghosts/internal/ipset"
	"ghosts/internal/ipv4"
	"ghosts/internal/probe"
	"ghosts/internal/sources"
	"ghosts/internal/universe"
	"ghosts/internal/windows"
)

func main() {
	u := universe.New(universe.TinyConfig(7))
	ws := windows.Paper()
	w := ws[len(ws)-1]
	at := func() time.Time { return w.End }

	// Sweep the /16 around the first used address.
	var target ipv4.Prefix
	u.UsedAt(w.End).Range(func(a ipv4.Addr) bool {
		target = ipv4.NewPrefix(a, 16)
		return false
	})
	truth := u.UsedInPrefix(target, w.End)
	fmt.Printf("Target %v: %d truly used addresses in %d /24s\n\n",
		target, truth.Len(), truth.Slash24Len())

	run := func(kind probe.Kind, transport inet.Transport, netEnd inet.Transport) *probe.Result {
		responder := inet.NewResponder(u, 0.01, 99)
		go inet.Serve(netEnd, responder, at)
		defer transport.Close()
		c := &probe.Census{
			Transport: transport,
			Src:       ipv4.MustParseAddr("192.0.2.1"),
			Kind:      kind,
			Start:     w.Start,
			End:       w.End,
			ID:        0xCAFE,
		}
		res, err := c.Run([]ipv4.Prefix{target})
		if err != nil {
			panic(err)
		}
		return res
	}

	// IPING over UDP loopback.
	pEnd, nEnd, err := inet.NewUDPPair()
	if err != nil {
		panic(err)
	}
	icmp := run(probe.ICMP, pEnd, nEnd)
	fmt.Printf("IPING (UDP transport):   sent %6d, observed %5d used, ignored %d responses\n",
		icmp.Sent, icmp.Observed.Len(), icmp.Ignored)

	// TPING over the in-memory transport.
	pEnd2, nEnd2 := inet.NewPair(2048)
	tcp := run(probe.TCP80, pEnd2, nEnd2)
	fmt.Printf("TPING (channel transport): sent %6d, observed %5d used, ignored %d RSTs etc.\n\n",
		tcp.Sent, tcp.Observed.Len(), tcp.Ignored)

	// A passive log for the third capture source.
	suite := sources.NewSuite(u, 123)
	web := suite.Collect(sources.WEB, w, nil).Addrs
	webHere := ipset.New()
	web.Range(func(a ipv4.Addr) bool {
		if target.Contains(a) {
			webHere.Add(a)
		}
		return a <= target.Last()
	})
	fmt.Printf("WEB log restricted to %v: %d addresses\n\n", target, webHere.Len())

	sets := []*ipset.Set{icmp.Observed, tcp.Observed, webHere}
	tb := core.TableFromSets(sets, []string{"IPING", "TPING", "WEB"})
	est := core.DefaultEstimator(float64(target.Size()))
	res, err := est.Estimate(tb)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Observed by any source: %d\n", tb.Observed())
	fmt.Printf("CR estimate:            %.0f  [%.0f, %.0f]\n", res.N, res.Interval.Lo, res.Interval.Hi)
	fmt.Printf("Truth:                  %d\n", truth.Len())
	fmt.Printf("Heidemann 1.86 x ping:  %.0f\n", core.PingCorrection(int64(icmp.Observed.Len())))
	errCR := math.Abs(res.N - float64(truth.Len()))
	errObs := math.Abs(float64(tb.Observed()) - float64(truth.Len()))
	fmt.Printf("\n|error| CR %.0f vs observed-count %.0f\n", errCR, errObs)
}
