// Runout: run the full pipeline — simulate, observe with nine sources,
// spoof-filter, estimate per window — then project when each registry's
// remaining IPv4 supply runs out (the paper's Table 6), and predict how the
// unobserved "ghost" addresses fill the vacant prefixes (§7, Figure 12).
//
//	go run ./examples/runout
package main

import (
	"fmt"
	"os"

	"ghosts/internal/dataset"
	"ghosts/internal/experiments"
	"ghosts/internal/report"
	"ghosts/internal/universe"
)

func main() {
	fmt.Println("Simulating three and a half years of Internet measurement…")
	env := experiments.New(universe.TinyConfig(21), 7)

	es := env.Estimates(dataset.DefaultOptions(), false, false)
	es24 := env.Estimates(dataset.DefaultOptions(), true, false)
	t := report.Table{
		Title:   "Observed vs estimated used space per window",
		Headers: []string{"Window", "Observed IPs", "Estimated IPs", "Observed /24", "Estimated /24"},
	}
	for i := range es {
		t.AddRow(es[i].Window.Label(),
			report.FormatFloat(es[i].Observed), report.FormatFloat(es[i].Est),
			report.FormatFloat(es24[i].Observed), report.FormatFloat(es24[i].Est))
	}
	t.Render(os.Stdout)

	growth := experiments.LinearGrowth(es, func(w experiments.WindowEstimate) float64 { return w.Est })
	fmt.Printf("\nLinear growth fit: %s addresses/year\n\n", report.FormatFloat(growth))

	fmt.Println("Supply projection (cf. Table 6):")
	experiments.Table6(env).Render(os.Stdout)

	fmt.Println()
	fmt.Println("Ghost placement (cf. Figure 12):")
	experiments.Figure12(env).Render(os.Stdout)
}
