// Spooffilter: ship NetFlow v5 records — genuine traffic plus uniformly
// spoofed DDoS/decoy sources — from an exporter to a UDP collector, then
// remove the spoofed addresses with the paper's two-stage filter (§4.5)
// and show what spoofing would otherwise do to /24 counts and CR
// estimates.
//
//	go run ./examples/spooffilter
package main

import (
	"fmt"
	"time"

	"ghosts/internal/bgp"
	"ghosts/internal/ipset"
	"ghosts/internal/ipv4"
	"ghosts/internal/netflow"
	"ghosts/internal/rng"
	"ghosts/internal/sources"
	"ghosts/internal/spoof"
	"ghosts/internal/universe"
	"ghosts/internal/windows"
)

func main() {
	u := universe.New(universe.TinyConfig(11))
	ws := windows.Paper()
	w := ws[8] // ends Dec 2013
	routed := bgp.Aggregate(u, w, 3)
	suite := sources.NewSuite(u, 55)

	// Build the access router's view: genuine flows from a clean SWIN
	// collection, plus spoofed sources drawn uniformly over the routed
	// space (DDoS attacks and nmap decoy scans, §4.5).
	clean := *suite
	clean.SpoofScale = 0
	genuine := clean.Collect(sources.SWIN, w, routed).Addrs

	collector, err := netflow.NewCollector()
	if err != nil {
		panic(err)
	}
	defer collector.Close()
	exporter, err := netflow.NewExporter(collector.Addr())
	if err != nil {
		panic(err)
	}

	count := 0
	pace := func() {
		// Pace the export so the collector's socket buffer keeps up; real
		// routers spread flow expiry over time too.
		if count%3000 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	genuine.Range(func(a ipv4.Addr) bool {
		rec := netflow.Record{Src: a, Dst: ipv4.MustParseAddr("192.0.2.9"),
			SrcPort: 40000, DstPort: 443, Proto: 6, Packets: 12, Octets: 9000}
		if err := exporter.Export(rec); err != nil {
			panic(err)
		}
		count++
		pace()
		return true
	})
	// Spoofed flood: uniform over the routed space.
	r := rng.New(77)
	prefixes := routed.Prefixes()
	var total uint64
	cum := make([]uint64, len(prefixes))
	for i, p := range prefixes {
		total += p.Size()
		cum[i] = total
	}
	spoofedSent := genuine.Len() / 20
	for i := 0; i < spoofedSent; i++ {
		k := r.Uint64n(total)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		off := k
		if lo > 0 {
			off -= cum[lo-1]
		}
		rec := netflow.Record{Src: prefixes[lo].First() + ipv4.Addr(off),
			Dst: ipv4.MustParseAddr("192.0.2.9"), Proto: 17, Packets: 1, Octets: 64}
		if err := exporter.Export(rec); err != nil {
			panic(err)
		}
		count++
		pace()
	}
	if err := exporter.Close(); err != nil {
		panic(err)
	}
	// Wait until the collector goes quiet. Bursty UDP export over
	// loopback drops some datagrams under load — exactly as real NetFlow
	// does — so wait for the stream to settle rather than for every
	// record.
	var last int64 = -1
	for {
		recs, _ := collector.Stats()
		if recs == last {
			break
		}
		last = recs
		time.Sleep(50 * time.Millisecond)
	}
	dirty := collector.Sources()
	recs, _ := collector.Stats()
	fmt.Printf("NetFlow collector: %d of %d records delivered (UDP drops are normal), %d distinct sources (%d genuine + spoofed)\n",
		recs, count, dirty.Len(), genuine.Len())
	fmt.Printf("  /24 subnets: genuine %d, with spoofing %d (+%.0f%%)\n\n",
		genuine.Slash24Len(), dirty.Slash24Len(),
		100*(float64(dirty.Slash24Len())/float64(genuine.Slash24Len())-1))

	// The paper's two-stage filter, trained on the spoof-free sources.
	spoofFree := ipset.New()
	for _, n := range []sources.Name{sources.WIKI, sources.WEB, sources.MLAB, sources.GAME} {
		spoofFree.AddSet(suite.Collect(n, w, routed).Addrs)
	}
	byteRef := spoofFree.Clone()
	for _, n := range []sources.Name{sources.SPAM, sources.IPING, sources.TPING} {
		byteRef.AddSet(suite.Collect(n, w, routed).Addrs)
	}
	f := spoof.New(spoofFree, byteRef, u.EmptyBlocks(), 99)
	cleaned, st := f.Clean(dirty)

	fmt.Printf("Spoof filter: S=%.0f per /8-equivalent, stage-1 threshold m=%d\n", st.SPer8, st.M)
	fmt.Printf("  removed %d whole /24s (%d addrs), %d more by last-byte Bayes\n",
		st.RemovedSubnets, st.RemovedAddrs, st.Stage2Removed)
	fmt.Printf("  kept %d addresses in %d /24s\n\n", cleaned.Len(), cleaned.Slash24Len())

	kept := ipset.IntersectCount(cleaned, genuine)
	spoofedIn := dirty.Len() - ipset.IntersectCount(dirty, genuine)
	spoofedOut := cleaned.Len() - kept
	fmt.Printf("Genuine retention: %.1f%%   spoofed surviving: %d of %d\n",
		100*float64(kept)/float64(genuine.Len()), spoofedOut, spoofedIn)
	fmt.Printf("/24 error vs genuine: unfiltered %+d, filtered %+d\n",
		dirty.Slash24Len()-genuine.Slash24Len(), cleaned.Slash24Len()-genuine.Slash24Len())
}
