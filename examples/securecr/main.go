// Securecr: three measurement operators jointly estimate the used address
// space without revealing their observation logs to each other — the
// paper's stated future work (§8), implemented with commutative
// Pohlig–Hellman encryption.
//
// Each operator hashes its addresses into a prime-order group, encrypts
// with its secret exponent, and the batches circulate until every batch is
// encrypted under every key. Equal addresses then match as opaque tokens,
// which is all the contingency table needs.
//
//	go run ./examples/securecr
package main

import (
	"fmt"
	"math"

	"ghosts/internal/bgp"
	"ghosts/internal/core"
	"ghosts/internal/ipset"
	"ghosts/internal/mpcr"
	"ghosts/internal/sources"
	"ghosts/internal/universe"
	"ghosts/internal/windows"
)

func main() {
	u := universe.New(universe.TinyConfig(31))
	ws := windows.Paper()
	w := ws[len(ws)-1]
	rt := bgp.Aggregate(u, w, 2)
	suite := sources.NewSuite(u, 77)

	operators := []sources.Name{sources.IPING, sources.WEB, sources.GAME}
	var sets []*ipset.Set
	var parties []*mpcr.Party
	fmt.Println("Operators and their (private) observation sets:")
	for i, n := range operators {
		obs := suite.Collect(n, w, rt).Addrs
		sets = append(sets, obs)
		p, err := mpcr.NewParty(string(n), uint64(1000+i), obs)
		if err != nil {
			panic(err)
		}
		parties = append(parties, p)
		fmt.Printf("  %-6s %7d addresses (never leave the operator)\n", n, obs.Len())
	}

	fmt.Println("\nRunning the commutative-encryption protocol…")
	tb, err := mpcr.ComputeTable(parties)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Combiner sees only capture-history counts (%d cells):\n", len(tb.Counts)-1)
	for s := 1; s < len(tb.Counts); s++ {
		fmt.Printf("  history %03b: %7d\n", s, tb.Counts[s])
	}

	est := core.DefaultEstimator(math.Inf(1))
	secure, err := est.Estimate(tb)
	if err != nil {
		panic(err)
	}
	plain, err := est.Estimate(core.TableFromSets(sets, nil))
	if err != nil {
		panic(err)
	}
	truth := u.UsedAt(w.End).Len()
	fmt.Printf("\nSecure estimate:    %.0f  [%.0f, %.0f]\n", secure.N, secure.Interval.Lo, secure.Interval.Hi)
	fmt.Printf("Plaintext estimate: %.0f  (identical table, same estimate)\n", plain.N)
	fmt.Printf("Ground truth:       %d used addresses\n", truth)
	fmt.Printf("Observed union:     %d\n", plain.Observed)
}
