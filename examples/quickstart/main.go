// Quickstart: estimate a population from three overlapping observation
// sets with log-linear capture-recapture.
//
// A hidden population of 100,000 "used addresses" is sampled by three
// simulated measurement sources with different coverage and bias. The
// example builds the capture-history contingency table, lets the estimator
// select and fit a log-linear model, and compares the estimate (and the
// classical baselines) against the truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"ghosts/internal/core"
	"ghosts/internal/ipset"
	"ghosts/internal/ipv4"
	"ghosts/internal/rng"
)

func main() {
	const population = 100000
	r := rng.New(2014)

	// Three sources with heterogeneous capture probabilities: "ping"
	// favours even addresses (stand-in for servers), the two "logs"
	// favour odd ones (clients), which makes the logs positively
	// correlated — the situation where Lincoln-Petersen fails and
	// log-linear models shine (§3.2.2 of the paper).
	ping := ipset.New()
	logA := ipset.New()
	logB := ipset.New()
	truth := ipset.New()
	base := ipv4.MustParseAddr("100.64.1.0") // any block works
	for i := 0; i < population; i++ {
		a := base + ipv4.Addr(i)
		truth.Add(a)
		// Latent "serverness" in [0,1]: servers answer pings, clients show
		// up in logs. The smooth mixture makes the two logs positively
		// correlated and both negatively correlated with ping.
		s := r.Float64()
		pPing := 0.10 + 0.45*s
		pLog := 0.42 - 0.30*s
		if r.Bernoulli(pPing) {
			ping.Add(a)
		}
		if r.Bernoulli(pLog) {
			logA.Add(a)
		}
		if r.Bernoulli(pLog) {
			logB.Add(a)
		}
	}

	sets := []*ipset.Set{ping, logA, logB}
	names := []string{"PING", "LOG-A", "LOG-B"}
	tb := core.TableFromSets(sets, names)

	fmt.Println("Observed:")
	for i, n := range names {
		fmt.Printf("  %-6s %6d addresses\n", n, sets[i].Len())
	}
	fmt.Printf("  union  %6d addresses (truth: %d)\n\n", tb.Observed(), population)

	// AIC with unscaled counts: the right setting for a single clean
	// sample like this one (the paper's BIC-adaptive default is tuned for
	// its noisy multi-source measurement data, §5.1).
	est := core.NewEstimator(core.AIC, core.Fixed1, math.Inf(1))
	res, err := est.Estimate(tb)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Log-linear CR estimate: %.0f (model %v, interval [%.0f, %.0f])\n",
		res.N, modelTerms(res.Model), res.Interval.Lo, res.Interval.Hi)
	fmt.Printf("  ghosts (unseen): %.0f\n", res.Unseen)

	paper, err := core.DefaultEstimator(math.Inf(1)).Estimate(tb)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Paper-default (BIC, adaptive divisor): %.0f (model %v)\n\n",
		paper.N, modelTerms(paper.Model))

	// Diagnostics: why the model search added interaction terms.
	dep := core.Dependence(tb)
	fmt.Printf("Pairwise dependence (log odds ratios): PINGxLOG-A %+.2f, LOG-AxLOG-B %+.2f\n",
		dep[0][1], dep[1][2])
	fit, err := core.FitModel(tb, res.Model, math.Inf(1), 1)
	if err != nil {
		panic(err)
	}
	gof := core.GoodnessOfFit(tb, fit)
	fmt.Printf("Goodness of fit: deviance %.1f on %d df (p = %.3f)\n", gof.Deviance, gof.DF, gof.PValue)
	if bi, err := core.BootstrapInterval(tb, fit, math.Inf(1), 200, 0.95, 7); err == nil {
		fmt.Printf("Bootstrap 95%% interval (Poisson noise only): [%.0f, %.0f]\n\n", bi.Lo, bi.Hi)
	}

	fmt.Println("Baselines:")
	fmt.Printf("  Lincoln-Petersen (PING x LOG-A):  %.0f\n", core.LincolnPetersenPair(tb, 0, 1))
	fmt.Printf("  Lincoln-Petersen (LOG-A x LOG-B): %.0f  <- biased low: correlated sources\n",
		core.LincolnPetersenPair(tb, 1, 2))
	fmt.Printf("  Chao lower bound:                 %.0f\n", core.ChaoLowerBound(tb))
	fmt.Printf("  Heidemann 1.86 x ping:            %.0f\n", core.PingCorrection(int64(ping.Len())))
	fmt.Printf("\nTruth: %d\n", population)
}

func modelTerms(m core.Model) []string {
	if len(m.Terms) == 0 {
		return []string{"independence"}
	}
	out := make([]string, len(m.Terms))
	for i, h := range m.Terms {
		out[i] = core.TermName(h)
	}
	return out
}
