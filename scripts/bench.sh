#!/usr/bin/env bash
# Snapshot the benchmark suite into BENCH_<date>.json so the performance
# trajectory is tracked PR over PR.
#
# Usage: scripts/bench.sh [bench-regex] [benchtime]
#   scripts/bench.sh                          # full suite, 1 iteration each
#   scripts/bench.sh 'CrossValidation' 5x     # one benchmark, 5 iterations
#
# Alongside the benchmark numbers, a telemetry run report of the summary
# experiment (BENCH_<date>.telemetry.json — fit counts, iteration
# histograms, pool hit rate, per-phase wall time; see OBSERVABILITY.md)
# is snapshotted so effort metrics are tracked PR over PR, not just
# ns/op. Set GHOSTS_BENCH_NO_TELEMETRY=1 to skip it.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
BENCHTIME="${2:-1x}"
# No-clobber naming: never overwrite an existing snapshot (same-day reruns
# get a .2/.3/... suffix) — the previous snapshot is the baseline the
# regression diff below compares against.
STEM="BENCH_$(date +%Y-%m-%d)"
OUT="$STEM.json"
N=2
while [ -e "$OUT" ]; do
    OUT="$STEM.$N.json"
    N=$((N + 1))
done
STEM="${OUT%.json}"
TXT="$(mktemp)"
cleanup() {
    for pid in "${SERVEPID:-}" "${FW1PID:-}" "${FW2PID:-}" "${FRPID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TXT" "${SERVEDIR:-}" "${FLEETDIR:-}"
}
trap cleanup EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$TXT"

# Convert `BenchmarkName  iters  123 ns/op  456 B/op  7 allocs/op  8.9 metric`
# lines into a JSON array of {name, iters, metrics{unit: value}} objects.
# The first element records the parallelism the numbers were taken under
# (GOMAXPROCS and the host CPU count): a multi-core snapshot is not
# comparable to a single-core one. It carries no "name"/"ns/op" pair, so
# the regression diff below skips it.
NCPU="$(nproc 2>/dev/null || echo 1)"
GMP="${GOMAXPROCS:-$NCPU}"
awk -v gmp="$GMP" -v ncpu="$NCPU" '
BEGIN {
    print "["
    printf("  {\"meta\": {\"gomaxprocs\": %d, \"host_cpus\": %d}}", gmp, ncpu)
    first = 0
}
/^Benchmark/ {
    if (!first) printf(",\n"); first = 0
    printf("  {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", $1, $2)
    sep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        gsub(/"/, "", $(i+1))
        printf("%s\"%s\": %s", sep, $(i+1), $i)
        sep = ", "
    }
    printf("}}")
}
END { print "\n]" }
' "$TXT" > "$OUT"

echo "wrote $OUT"

# Diff the two newest snapshots: flag every benchmark whose ns/op regressed
# by more than 15%. Informational by default (a regression needs a justified
# review, not a hidden one); set GHOSTS_BENCH_STRICT=1 to make it fatal.
PREV="$(ls -t BENCH_*.json 2>/dev/null | grep -v -e '\.telemetry\.json$' -e '\.serve\.json$' | sed -n 2p || true)"
if [ -n "$PREV" ]; then
    if ! awk -v prevfile="$PREV" -v curfile="$OUT" '
        function load(file, tgt,    line, name, ns) {
            while ((getline line < file) > 0) {
                if (match(line, /"name": "[^"]+"/)) {
                    name = substr(line, RSTART + 9, RLENGTH - 10)
                    if (match(line, /"ns\/op": [0-9.e+]+/)) {
                        ns = substr(line, RSTART + 9, RLENGTH - 9) + 0
                        tgt[name] = ns
                    }
                }
            }
            close(file)
        }
        BEGIN {
            load(prevfile, p); load(curfile, c)
            bad = 0
            for (n in c) {
                if (!(n in p) || p[n] <= 0) continue
                r = c[n] / p[n]
                if (r > 1.15) {
                    printf("REGRESSION %s: %.0f -> %.0f ns/op (+%.1f%%)\n", n, p[n], c[n], 100 * (r - 1))
                    bad = 1
                }
            }
            if (!bad) print "no >15% ns/op regressions vs " prevfile
            exit bad
        }'; then
        if [ -n "${GHOSTS_BENCH_STRICT:-}" ]; then
            exit 1
        fi
    fi
fi

if [ -z "${GHOSTS_BENCH_NO_TELEMETRY:-}" ]; then
    TELEMETRY="$STEM.telemetry.json"
    go run ./cmd/ghosts -exp summary -scale tiny -metrics "$TELEMETRY" > /dev/null
fi

# Streaming replay snapshot: run the committed pcap fixture through the
# ingest pipeline (`ghosts -replay`) with telemetry on. The report's
# ingest section carries the per-tick re-estimation latency histogram
# (ingest.tick_us), the incremental-update counter (ingest.hist_updates)
# and the glm_fit section the warm-start counters, so the streaming
# path's cost is tracked PR over PR alongside batch and serve. The two
# headline numbers — replay throughput in events/sec and the tick-latency
# p99 — are derived from the report and committed alongside it at the top
# of the snapshot. Set GHOSTS_BENCH_NO_STREAM=1 to skip it.
if [ -z "${GHOSTS_BENCH_NO_STREAM:-}" ]; then
    STREAMOUT="$STEM.stream.json"
    STREAMRAW="$(mktemp)"
    go run ./cmd/ghosts -replay internal/ingest/testdata/stream.pcap -json \
        -metrics "$STREAMRAW" > /dev/null 2> /dev/null
    # events_per_sec = ingest.events over the run's wall clock;
    # tick_p99_us = the smallest ingest.tick_us bucket bound covering 99%
    # of ticks (the histogram max if the tail spills past the buckets).
    awk '
        NR == 1 { next }                                  # replaced by the wrapper
        /^  "wall_ms":/  && !wall      { wall = $2 + 0 }
        $1 == "\"ingest\":"            { ing = 1 }
        ing && $1 == "\"events\":"     { ev = $2 + 0 }
        ing && $1 == "\"tick_us\":"    { tick = 1 }
        tick == 1 && $1 == "\"count\":" { tc = $2 + 0 }
        tick == 1 && $1 == "\"max\":"   { tmax = $2 + 0 }
        tick == 1 && $1 == "\"le\":"    { le = $2 + 0 }
        tick == 1 && $1 == "\"n\":"     { cum += $2; if (!p99 && tc && cum >= 0.99 * tc) p99 = le }
        tick == 1 && $1 == "]"          { tick = 2 }      # end of the bucket list
        { body = body $0 "\n" }
        END {
            if (!p99) p99 = tmax
            eps = wall > 0 ? ev / (wall / 1000) : 0
            printf "{\n  \"events_per_sec\": %.1f,\n  \"tick_p99_us\": %d,\n  \"report\": {\n", eps, p99
            printf "%s}\n", body
        }' "$STREAMRAW" > "$STREAMOUT"
    rm -f "$STREAMRAW"
    echo "wrote $STREAMOUT"
fi

# Server-side latency snapshot: boot ghostsd on a random port, replay a
# small request mix (cold computes, cache hits, a distinct table), then
# shut down; the telemetry report it writes carries the serve section
# (request/latency histograms, cache hit counts — see OBSERVABILITY.md).
# Set GHOSTS_BENCH_NO_SERVE=1 to skip it.
if [ -z "${GHOSTS_BENCH_NO_SERVE:-}" ]; then
    SERVEOUT="$STEM.serve.json"
    SERVEDIR="$(mktemp -d)"
    SERVELOG="$SERVEDIR/ghostsd.log"
    go build -o "$SERVEDIR/ghostsd" ./cmd/ghostsd
    "$SERVEDIR/ghostsd" -addr 127.0.0.1:0 -metrics "$SERVEOUT" 2> "$SERVELOG" &
    SERVEPID=$!
    BASE=""
    for _ in $(seq 1 100); do
        BASE="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$SERVELOG" | head -n 1)"
        [ -n "$BASE" ] && break
        sleep 0.1
    done
    [ -n "$BASE" ] || { echo "ghostsd never came up:" >&2; cat "$SERVELOG" >&2; exit 1; }
    REQ='{"counts":[0,400,350,120,300,90,80,40],"limit":5000}'
    ALT='{"counts":[0,400,350,120,300,90,80,40],"limit":6000}'
    for _ in $(seq 1 10); do
        curl -fsS -X POST "$BASE/v1/estimate" -d "$REQ" > /dev/null
    done
    curl -fsS -X POST "$BASE/v1/estimate" -d "$ALT" > /dev/null
    kill -TERM "$SERVEPID"
    wait "$SERVEPID"
    SERVEPID=""
    echo "wrote $SERVEOUT"
fi

# Fleet snapshot: boot two workers and a router, drive them with the load
# generator's deterministic Zipf mix, and keep its ghosts.loadgen/v1
# summary (throughput, latency percentiles, cache-status mix — including
# gomaxprocs/host_cpus, so fleet numbers carry their parallelism context
# like the meta element above). FLEET.md documents the topology.
# Set GHOSTS_BENCH_NO_FLEET=1 to skip it.
if [ -z "${GHOSTS_BENCH_NO_FLEET:-}" ]; then
    FLEETOUT="$STEM.fleet.json"
    FLEETDIR="$(mktemp -d)"
    go build -o "$FLEETDIR/ghostsd" ./cmd/ghostsd
    go build -o "$FLEETDIR/ghosts-loadgen" ./cmd/ghosts-loadgen
    fleet_base() { # logfile -> prints base URL once the daemon logs it
        local base=""
        for _ in $(seq 1 100); do
            base="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$1" | head -n 1)"
            [ -n "$base" ] && { echo "$base"; return 0; }
            sleep 0.1
        done
        return 1
    }
    # Peer wiring needs both URLs up front but ports are dynamic, so: boot
    # worker 1 to learn its port, boot worker 2 peering at it, then restart
    # worker 1 on its (just freed) port peering back — fully symmetric, so
    # a displaced key is a byte copy on either worker, never a second fit.
    "$FLEETDIR/ghostsd" -addr 127.0.0.1:0 2> "$FLEETDIR/w1.log" &
    FW1PID=$!
    FW1="$(fleet_base "$FLEETDIR/w1.log")" || { echo "fleet worker 1 never came up" >&2; exit 1; }
    "$FLEETDIR/ghostsd" -addr 127.0.0.1:0 -peers "$FW1" 2> "$FLEETDIR/w2.log" &
    FW2PID=$!
    FW2="$(fleet_base "$FLEETDIR/w2.log")" || { echo "fleet worker 2 never came up" >&2; exit 1; }
    kill -TERM "$FW1PID" && wait "$FW1PID"
    "$FLEETDIR/ghostsd" -addr "${FW1#http://}" -peers "$FW2" 2> "$FLEETDIR/w1b.log" &
    FW1PID=$!
    FW1="$(fleet_base "$FLEETDIR/w1b.log")" || { echo "fleet worker 1 never came back up" >&2; exit 1; }
    "$FLEETDIR/ghostsd" -router "$FW1,$FW2" -addr 127.0.0.1:0 2> "$FLEETDIR/router.log" &
    FRPID=$!
    FROUTER="$(fleet_base "$FLEETDIR/router.log")" || { echo "fleet router never came up" >&2; exit 1; }
    "$FLEETDIR/ghosts-loadgen" -target "$FROUTER" \
        -requests 300 -concurrency 8 -corpus 48 -out "$FLEETOUT"
    for pid in "$FRPID" "$FW1PID" "$FW2PID"; do
        kill -TERM "$pid" && wait "$pid"
    done
    FRPID=""; FW1PID=""; FW2PID=""
    echo "wrote $FLEETOUT"
fi
