#!/usr/bin/env bash
# CI gate: build, vet, then the full test suite under the race detector.
# The estimation engine is concurrent (see DESIGN.md "Performance"), so the
# race detector is mandatory, not optional.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== docs lint =="
# Every package must carry a package comment (the doc.go convention —
# see OBSERVABILITY.md and the per-package doc.go files).
UNDOC="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)"
if [ -n "$UNDOC" ]; then
    echo "packages missing a package comment:" >&2
    echo "$UNDOC" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== lattice/dense differential (-race) =="
# The lattice IRLS kernel must agree with the dense reference kernel to
# tolerance on every design shape (DESIGN.md §8): the differential property
# tests are the licence for routing all engine fits through the lattice
# path, so they run as their own named gate, race-enabled and uncached.
go test -race -count=1 -run 'TestLattice|TestMoments' ./internal/stats

echo "== strata fold/Split differential (-race) =="
# The labelled histogram fold must agree bit-for-bit with the dense
# Split-based path — labels, observed totals and estimates (DESIGN.md
# §8.2): these differential tests are the licence for routing the
# stratified sweeps through the fold, so they run as their own named gate,
# race-enabled and uncached.
go test -race -count=1 -run 'TestStratDifferential' ./internal/experiments
go test -race -count=1 -run 'TestLabelTableDifferential|TestCaptureHistogramsDifferential' ./internal/strata
go test -race -count=1 -run 'TestCaptureHistogramsBy' ./internal/ipset

echo "== deadlock smoke =="
# Bounded-time regression net for the single-flight leader-panic deadlock:
# coalesced bursts with injected leader panics must fully complete — every
# waiter released, the key freed — inside a hard wall-clock budget. The
# -timeout turns any reintroduced deadlock into a loud failure, not a hang.
go test -race -run 'TestDeadlockSmoke' -count=1 -timeout 90s ./internal/serve

echo "== streaming ingest (-race) =="
# The ingest pipeline is shared mutable state between feed goroutines,
# the tick loop and SSE subscribers; its suite runs race-enabled and
# uncached as its own named gate (STREAMING.md documents the pipeline).
go test -race -count=1 ./internal/ingest

echo "== incremental histogram differential + churn (-race) =="
# The tick path reads per-window capture-mask histograms that Offer
# mutates in place, and dirty windows re-estimate concurrently
# (STREAMING.md "Incremental histograms"). Two licences, both named and
# uncached: the differential suite pins the incremental path bit-identical
# to the set-rebuild reference (serial and parallel), and the churn test
# hammers concurrent Offer + tick + subscriber churn — including the
# delta-frame derivation — under the race detector.
go test -race -count=1 \
    -run 'TestIncrementalMatchesRebuild|TestParallelTickMatchesSerial|TestIngestConcurrentChurn' \
    ./internal/ingest
go test -race -count=1 -run 'TestWatchDeltaMode|TestWatchSSEMatchesPipeline' ./internal/server

echo "== streaming replay smoke =="
# Replay the committed capture fixture twice through `ghosts -replay
# -json`: the runs must be byte-identical (replay determinism), match the
# committed golden tick series, and the telemetry report must show
# warm-started sweep fits — the cadence-under-window design actually
# paying off (STREAMING.md "Warm starts").
RSDIR="$(mktemp -d)"
cleanup_replay() { rm -rf "$RSDIR"; }
trap cleanup_replay EXIT
go build -o "$RSDIR/ghosts" ./cmd/ghosts
"$RSDIR/ghosts" -replay internal/ingest/testdata/stream.pcap -json \
    -metrics "$RSDIR/replay.metrics.json" > "$RSDIR/replay1.jsonl" 2> /dev/null
"$RSDIR/ghosts" -replay internal/ingest/testdata/stream.pcap -json \
    > "$RSDIR/replay2.jsonl" 2> /dev/null
cmp -s "$RSDIR/replay1.jsonl" "$RSDIR/replay2.jsonl" \
    || { echo "replay is not deterministic across runs" >&2; exit 1; }
cmp -s "$RSDIR/replay1.jsonl" internal/ingest/testdata/stream.golden \
    || { echo "replay drifted from the committed golden series" >&2; exit 1; }
grep -q '"sweep_warm_starts": [1-9]' "$RSDIR/replay.metrics.json" \
    || { echo "replay never warm-started a fit" >&2; exit 1; }
cleanup_replay
trap - EXIT
echo "streaming replay smoke OK"

echo "== ghostsd smoke =="
# Build the daemon, boot it on a random port, hit the health probe and one
# estimate, then check it shuts down cleanly on SIGTERM (exit 0).
SMOKEDIR="$(mktemp -d)"
SMOKELOG="$SMOKEDIR/ghostsd.log"
cleanup_smoke() {
    [ -n "${SMOKEPID:-}" ] && kill "$SMOKEPID" 2>/dev/null || true
    rm -rf "$SMOKEDIR"
}
trap cleanup_smoke EXIT
go build -o "$SMOKEDIR/ghostsd" ./cmd/ghostsd
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 2> "$SMOKELOG" &
SMOKEPID=$!
BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$SMOKELOG" | head -n 1)"
    [ -n "$BASE" ] && break
    sleep 0.1
done
[ -n "$BASE" ] || { echo "ghostsd never came up:" >&2; cat "$SMOKELOG" >&2; exit 1; }
curl -fsS "$BASE/healthz" | grep -q '^ok$'
curl -fsS -X POST "$BASE/v1/estimate" \
    -d '{"counts":[0,400,350,120,300,90,80,40],"limit":5000}' \
    | grep -q '"kind": "estimate"'
kill -TERM "$SMOKEPID"
wait "$SMOKEPID" || { echo "ghostsd did not exit cleanly on SIGTERM" >&2; exit 1; }
SMOKEPID=""
echo "ghostsd smoke OK ($BASE)"

echo "== fleet smoke =="
# Boot two workers and a router over them (all on random ports), estimate
# through the router, then SIGTERM one worker mid-fleet: the router must
# keep serving through the survivor and — the headline fleet invariant —
# the response bytes must be identical before and after the failover
# (FLEET.md). Everything must exit cleanly.
FLEETDIR="$(mktemp -d)"
cleanup_fleet() { # replaces cleanup_smoke as the EXIT trap, so take SMOKEDIR too
    for pid in "${W1PID:-}" "${W2PID:-}" "${RPID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$FLEETDIR" "$SMOKEDIR" # SMOKEDIR still holds the shared binary
}
trap cleanup_fleet EXIT
wait_base() { # logfile -> prints base URL once the daemon logs it
    local base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$1" | head -n 1)"
        [ -n "$base" ] && { echo "$base"; return 0; }
        sleep 0.1
    done
    return 1
}
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 2> "$FLEETDIR/w1.log" &
W1PID=$!
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 2> "$FLEETDIR/w2.log" &
W2PID=$!
W1="$(wait_base "$FLEETDIR/w1.log")" || { echo "worker 1 never came up" >&2; cat "$FLEETDIR/w1.log" >&2; exit 1; }
W2="$(wait_base "$FLEETDIR/w2.log")" || { echo "worker 2 never came up" >&2; cat "$FLEETDIR/w2.log" >&2; exit 1; }
"$SMOKEDIR/ghostsd" -router "$W1,$W2" -probe-every 200ms -addr 127.0.0.1:0 \
    2> "$FLEETDIR/router.log" &
RPID=$!
ROUTER="$(wait_base "$FLEETDIR/router.log")" || { echo "router never came up" >&2; cat "$FLEETDIR/router.log" >&2; exit 1; }
FLEETBODY='{"counts":[0,400,350,120,300,90,80,40],"limit":5000}'
curl -fsS -X POST "$ROUTER/v1/estimate" -d "$FLEETBODY" > "$FLEETDIR/before.json"
grep -q '"kind": "estimate"' "$FLEETDIR/before.json"
kill -TERM "$W2PID"
wait "$W2PID" || { echo "worker 2 did not exit cleanly on SIGTERM" >&2; exit 1; }
W2PID=""
sleep 0.6  # > -probe-every: let the router notice the departure
curl -fsS "$ROUTER/readyz" | grep -q '^ok$' \
    || { echo "router not ready after losing one worker" >&2; exit 1; }
curl -fsS -X POST "$ROUTER/v1/estimate" -d "$FLEETBODY" > "$FLEETDIR/after.json"
cmp -s "$FLEETDIR/before.json" "$FLEETDIR/after.json" \
    || { echo "fleet response changed across worker failover" >&2; exit 1; }
kill -TERM "$RPID"
wait "$RPID" || { echo "router did not exit cleanly on SIGTERM" >&2; exit 1; }
RPID=""
kill -TERM "$W1PID"
wait "$W1PID" || { echo "worker 1 did not exit cleanly on SIGTERM" >&2; exit 1; }
W1PID=""
rm -rf "$FLEETDIR"
trap - EXIT
echo "fleet smoke OK ($ROUTER over $W1, $W2)"

echo "== dynamic fleet smoke =="
# Zero static topology: a router in -router-mode starts with no workers,
# workers self-register over POST /v1/fleet/join and learn their peers
# from GET /v1/fleet. The sequence exercises every membership transition
# (FLEET.md "Dynamic membership"): two joins at runtime, a third join, a
# death by lease lapse (SIGKILL, no clean leave), a clean deregistration
# (SIGTERM drain), and byte-identical estimates before and after.
DYNDIR="$(mktemp -d)"
cleanup_dyn() { # replaces cleanup_fleet as the EXIT trap, so take SMOKEDIR too
    for pid in "${D1PID:-}" "${D2PID:-}" "${D3PID:-}" "${DRPID:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$DYNDIR" "$SMOKEDIR"
}
trap cleanup_dyn EXIT
wait_fleet() { # router-url live-count -> waits for GET /v1/fleet to report it
    for _ in $(seq 1 100); do
        curl -fsS "$1/v1/fleet" | grep -q "\"live\": $2," && return 0
        sleep 0.1
    done
    echo "fleet never reached live=$2:" >&2
    curl -fsS "$1/v1/fleet" >&2 || true
    return 1
}
"$SMOKEDIR/ghostsd" -router-mode -probe-every 200ms -lease-ttl 1s \
    -addr 127.0.0.1:0 2> "$DYNDIR/router.log" &
DRPID=$!
DROUTER="$(wait_base "$DYNDIR/router.log")" || { echo "dynamic router never came up" >&2; cat "$DYNDIR/router.log" >&2; exit 1; }
# With no members the router is up but not ready.
[ "$(curl -s -o /dev/null -w '%{http_code}' "$DROUTER/readyz")" = "503" ] \
    || { echo "empty router claims readiness" >&2; exit 1; }
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 -join "$DROUTER" 2> "$DYNDIR/d1.log" &
D1PID=$!
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 -join "$DROUTER" 2> "$DYNDIR/d2.log" &
D2PID=$!
wait_fleet "$DROUTER" 2
curl -fsS "$DROUTER/v1/fleet" | grep -q '"source": "lease"' \
    || { echo "joined workers not marked as leased members" >&2; exit 1; }
curl -fsS "$DROUTER/readyz" | grep -q '^ok$' \
    || { echo "router not ready after two joins" >&2; exit 1; }
curl -fsS -X POST "$DROUTER/v1/estimate" -d "$FLEETBODY" > "$DYNDIR/before.json"
grep -q '"kind": "estimate"' "$DYNDIR/before.json"
# A third worker joins at runtime and is routable.
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 -join "$DROUTER" 2> "$DYNDIR/d3.log" &
D3PID=$!
wait_fleet "$DROUTER" 3
# Kill it without ceremony: no leave, no drain — its lease must lapse
# (1s TTL) and the router must sweep it out on its own. Liveness drops
# within one probe interval; full deregistration takes the lease TTL.
D3URL="$(wait_base "$DYNDIR/d3.log")"
kill -9 "$D3PID"
wait "$D3PID" 2>/dev/null || true
D3PID=""
for _ in $(seq 1 100); do
    curl -fsS "$DROUTER/v1/fleet" | grep -q "\"url\": \"$D3URL\"" || break
    sleep 0.1
done
curl -fsS "$DROUTER/v1/fleet" | grep -q "\"url\": \"$D3URL\"" \
    && { echo "lease-lapsed worker still registered" >&2; exit 1; }
wait_fleet "$DROUTER" 2
# SIGTERM a worker: its drain deregisters it immediately (PreDrain leave,
# before the probe cadence could even notice).
kill -TERM "$D2PID"
wait "$D2PID" || { echo "dynamic worker 2 did not exit cleanly on SIGTERM" >&2; exit 1; }
D2PID=""
wait_fleet "$DROUTER" 1
curl -fsS -X POST "$DROUTER/v1/estimate" -d "$FLEETBODY" > "$DYNDIR/after.json"
cmp -s "$DYNDIR/before.json" "$DYNDIR/after.json" \
    || { echo "dynamic fleet response changed across churn" >&2; exit 1; }
kill -TERM "$DRPID"
wait "$DRPID" || { echo "dynamic router did not exit cleanly on SIGTERM" >&2; exit 1; }
DRPID=""
kill -TERM "$D1PID"
wait "$D1PID" || { echo "dynamic worker 1 did not exit cleanly on SIGTERM" >&2; exit 1; }
D1PID=""
cleanup_dyn
trap - EXIT
echo "dynamic fleet smoke OK ($DROUTER)"

echo "CI OK"
