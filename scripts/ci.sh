#!/usr/bin/env bash
# CI gate: build, vet, then the full test suite under the race detector.
# The estimation engine is concurrent (see DESIGN.md "Performance"), so the
# race detector is mandatory, not optional.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== docs lint =="
# Every package must carry a package comment (the doc.go convention —
# see OBSERVABILITY.md and the per-package doc.go files).
UNDOC="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)"
if [ -n "$UNDOC" ]; then
    echo "packages missing a package comment:" >&2
    echo "$UNDOC" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== lattice/dense differential (-race) =="
# The lattice IRLS kernel must agree with the dense reference kernel to
# tolerance on every design shape (DESIGN.md §8): the differential property
# tests are the licence for routing all engine fits through the lattice
# path, so they run as their own named gate, race-enabled and uncached.
go test -race -count=1 -run 'TestLattice|TestMoments' ./internal/stats

echo "== strata fold/Split differential (-race) =="
# The labelled histogram fold must agree bit-for-bit with the dense
# Split-based path — labels, observed totals and estimates (DESIGN.md
# §8.2): these differential tests are the licence for routing the
# stratified sweeps through the fold, so they run as their own named gate,
# race-enabled and uncached.
go test -race -count=1 -run 'TestStratDifferential' ./internal/experiments
go test -race -count=1 -run 'TestLabelTableDifferential|TestCaptureHistogramsDifferential' ./internal/strata
go test -race -count=1 -run 'TestCaptureHistogramsBy' ./internal/ipset

echo "== deadlock smoke =="
# Bounded-time regression net for the single-flight leader-panic deadlock:
# coalesced bursts with injected leader panics must fully complete — every
# waiter released, the key freed — inside a hard wall-clock budget. The
# -timeout turns any reintroduced deadlock into a loud failure, not a hang.
go test -race -run 'TestDeadlockSmoke' -count=1 -timeout 90s ./internal/serve

echo "== streaming ingest (-race) =="
# The ingest pipeline is shared mutable state between feed goroutines,
# the tick loop and SSE subscribers; its suite runs race-enabled and
# uncached as its own named gate (STREAMING.md documents the pipeline).
go test -race -count=1 ./internal/ingest

echo "== streaming replay smoke =="
# Replay the committed capture fixture twice through `ghosts -replay
# -json`: the runs must be byte-identical (replay determinism), match the
# committed golden tick series, and the telemetry report must show
# warm-started sweep fits — the cadence-under-window design actually
# paying off (STREAMING.md "Warm starts").
RSDIR="$(mktemp -d)"
cleanup_replay() { rm -rf "$RSDIR"; }
trap cleanup_replay EXIT
go build -o "$RSDIR/ghosts" ./cmd/ghosts
"$RSDIR/ghosts" -replay internal/ingest/testdata/stream.pcap -json \
    -metrics "$RSDIR/replay.metrics.json" > "$RSDIR/replay1.jsonl" 2> /dev/null
"$RSDIR/ghosts" -replay internal/ingest/testdata/stream.pcap -json \
    > "$RSDIR/replay2.jsonl" 2> /dev/null
cmp -s "$RSDIR/replay1.jsonl" "$RSDIR/replay2.jsonl" \
    || { echo "replay is not deterministic across runs" >&2; exit 1; }
cmp -s "$RSDIR/replay1.jsonl" internal/ingest/testdata/stream.golden \
    || { echo "replay drifted from the committed golden series" >&2; exit 1; }
grep -q '"sweep_warm_starts": [1-9]' "$RSDIR/replay.metrics.json" \
    || { echo "replay never warm-started a fit" >&2; exit 1; }
cleanup_replay
trap - EXIT
echo "streaming replay smoke OK"

echo "== ghostsd smoke =="
# Build the daemon, boot it on a random port, hit the health probe and one
# estimate, then check it shuts down cleanly on SIGTERM (exit 0).
SMOKEDIR="$(mktemp -d)"
SMOKELOG="$SMOKEDIR/ghostsd.log"
cleanup_smoke() {
    [ -n "${SMOKEPID:-}" ] && kill "$SMOKEPID" 2>/dev/null || true
    rm -rf "$SMOKEDIR"
}
trap cleanup_smoke EXIT
go build -o "$SMOKEDIR/ghostsd" ./cmd/ghostsd
"$SMOKEDIR/ghostsd" -addr 127.0.0.1:0 2> "$SMOKELOG" &
SMOKEPID=$!
BASE=""
for _ in $(seq 1 100); do
    BASE="$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$SMOKELOG" | head -n 1)"
    [ -n "$BASE" ] && break
    sleep 0.1
done
[ -n "$BASE" ] || { echo "ghostsd never came up:" >&2; cat "$SMOKELOG" >&2; exit 1; }
curl -fsS "$BASE/healthz" | grep -q '^ok$'
curl -fsS -X POST "$BASE/v1/estimate" \
    -d '{"counts":[0,400,350,120,300,90,80,40],"limit":5000}' \
    | grep -q '"kind": "estimate"'
kill -TERM "$SMOKEPID"
wait "$SMOKEPID" || { echo "ghostsd did not exit cleanly on SIGTERM" >&2; exit 1; }
SMOKEPID=""
echo "ghostsd smoke OK ($BASE)"

echo "CI OK"
