#!/usr/bin/env bash
# CI gate: build, vet, then the full test suite under the race detector.
# The estimation engine is concurrent (see DESIGN.md "Performance"), so the
# race detector is mandatory, not optional.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== docs lint =="
# Every package must carry a package comment (the doc.go convention —
# see OBSERVABILITY.md and the per-package doc.go files).
UNDOC="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)"
if [ -n "$UNDOC" ]; then
    echo "packages missing a package comment:" >&2
    echo "$UNDOC" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "CI OK"
