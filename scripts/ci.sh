#!/usr/bin/env bash
# CI gate: build, vet, then the full test suite under the race detector.
# The estimation engine is concurrent (see DESIGN.md "Performance"), so the
# race detector is mandatory, not optional.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
